"""Irredundant sum-of-products extraction from a BDD (Minato-Morreale).

Used by the Design-Compiler-like baseline: supernode BDDs are flattened
back to near-minimal SOP covers which are then algebraically factored.

The implementation is the interval form of the algorithm: ``ISOP(L, U)``
returns a cover ``g`` with ``L <= g <= U``; recursive calls widen the
upper bound with already-covered minterms, which is what makes the
resulting cubes (close to) prime — e.g. the majority function comes
back as exactly ``ab + ac + bc``.
"""

from __future__ import annotations

from .manager import BDD


def bdd_isop(mgr: BDD, f: int) -> tuple[int, list[dict[int, bool]]]:
    """Compute an ISOP of ``f``.

    Returns ``(cover_edge, cubes)`` where each cube maps level -> phase
    and ``cover_edge`` is the BDD of the returned cover (equal to ``f``
    by construction; asserted by the tests).
    """
    cache: dict[tuple[int, int], tuple[int, tuple]] = {}

    def recurse(lower: int, upper: int) -> tuple[int, tuple]:
        if lower == mgr.ZERO:
            return mgr.ZERO, ()
        if upper == mgr.ONE:
            return mgr.ONE, (frozenset(),)
        key = (lower, upper)
        cached = cache.get(key)
        if cached is not None:
            return cached

        level = min(mgr.level_of_edge(lower), mgr.level_of_edge(upper))
        lower_high, lower_low = mgr._cofactors(lower, level)
        upper_high, upper_low = mgr._cofactors(upper, level)

        # Cubes that must carry the negative literal: minterms required
        # on the low side that the high side cannot absorb.
        cover_low, cubes_low = recurse(
            mgr.and_(lower_low, upper_high ^ 1), upper_low
        )
        cover_high, cubes_high = recurse(
            mgr.and_(lower_high, upper_low ^ 1), upper_high
        )
        # Whatever remains required is coverable without testing v.
        remaining_low = mgr.and_(lower_low, cover_low ^ 1)
        remaining_high = mgr.and_(lower_high, cover_high ^ 1)
        cover_shared, cubes_shared = recurse(
            mgr.or_(remaining_low, remaining_high),
            mgr.and_(upper_low, upper_high),
        )

        variable = mgr.var_at(level)
        cover = mgr.or_many(
            [
                mgr.and_(variable ^ 1, cover_low),
                mgr.and_(variable, cover_high),
                cover_shared,
            ]
        )
        cubes = (
            tuple(frozenset(cube | {(level, False)}) for cube in cubes_low)
            + tuple(frozenset(cube | {(level, True)}) for cube in cubes_high)
            + cubes_shared
        )
        result = (cover, cubes)
        cache[key] = result
        return result

    cover, cubes = recurse(f, f)
    return cover, [dict(cube) for cube in cubes]


def isop_cover_rows(
    mgr: BDD, f: int, fanin_names: list[str]
) -> list[str]:
    """ISOP of ``f`` as positional cover rows over ``fanin_names``."""
    _, cubes = bdd_isop(mgr, f)
    level_position = {mgr.level_of(name): i for i, name in enumerate(fanin_names)}
    rows = []
    for cube in cubes:
        row = ["-"] * len(fanin_names)
        for level, phase in cube.items():
            row[level_position[level]] = "1" if phase else "0"
        rows.append("".join(row))
    return rows
