"""Structural BDD rewrites used by dominator-driven decomposition.

The BDS decomposition theory identifies a candidate node ``d`` inside
the BDD of ``F`` and conceptually cuts the graph there: the function
*below* is ``h = func(d)`` and the function *above* is obtained by
replacing references to ``d`` with a constant (or, in general, any
function).  :func:`replace_node` performs that rewrite; dominator
classification in :mod:`repro.bdd.dominators` then certifies candidate
decompositions with exact BDD equality checks.

:func:`edge_statistics` computes per-node fan-in counts (regular /
complemented, 0-edge / 1-edge) needed by the m-dominator criteria of
BDS-MAJ Section III.B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .manager import BDD


def function_at(mgr: BDD, node_index: int) -> int:
    """Edge for the (positive-polarity) function rooted at ``node_index``."""
    return node_index << 1


def replace_node(mgr: BDD, root: int, node_index: int, replacement: int) -> int:
    """Rebuild ``root`` with every reference to ``node_index`` redirected
    to ``replacement`` (complement attributes on the references are
    honoured).

    With ``replacement`` a constant this computes the BDS "upper
    function" of a cut at ``node_index``; with an arbitrary function it
    performs functional substitution of the cut point.
    """
    if node_index == 0:
        raise ValueError("cannot replace the terminal node")
    cache: dict[int, int] = {}

    def walk(edge: int) -> int:
        complement = edge & 1
        index = edge >> 1
        if index == 0:
            return edge
        if index == node_index:
            return replacement ^ complement
        rebuilt = cache.get(index)
        if rebuilt is None:
            level, high, low = mgr.node_fields(index)
            rebuilt = mgr._mk(level, walk(high), walk(low))  # bdslint: disable=ENG002 -- sanctioned friend module: substitution rebuilds nodes through the manager's hash-consing entry point
            cache[index] = rebuilt
        return rebuilt ^ complement

    return walk(root)


@dataclass
class NodeFanin:
    """Fan-in statistics of one BDD node (within a set of roots)."""

    regular_zero: int = 0
    complemented_zero: int = 0
    one: int = 0  # 1-edges are always regular in canonical form
    root_refs: int = 0

    @property
    def total(self) -> int:
        return self.regular_zero + self.complemented_zero + self.one + self.root_refs


@dataclass
class EdgeStatistics:
    """Per-node fan-in counts over the sub-DAG reachable from the roots."""

    fanin: dict[int, NodeFanin] = field(default_factory=dict)

    def of(self, node_index: int) -> NodeFanin:
        return self.fanin.setdefault(node_index, NodeFanin())


def edge_statistics(mgr: BDD, roots: list[int]) -> EdgeStatistics:
    """Count, for every internal node reachable from ``roots``, how many
    0-edges (regular vs complemented) and 1-edges point at it.

    Root references are tallied separately: the m-dominator fan-in
    conditions of the paper concern *internal* edges only.
    """
    stats = EdgeStatistics()
    for root in roots:
        index = root >> 1
        if index != 0:
            stats.of(index).root_refs += 1
    for index in mgr.nodes_reachable(roots):
        _, high, low = mgr.node_fields(index)
        high_index = high >> 1
        if high_index != 0:
            stats.of(high_index).one += 1
        low_index = low >> 1
        if low_index != 0:
            entry = stats.of(low_index)
            if low & 1:
                entry.complemented_zero += 1
            else:
                entry.regular_zero += 1
    return stats


@dataclass
class PathDominators:
    """Structural dominator sets of a BDD root (node indices).

    In a complemented-edge BDD there is a single terminal and the
    *value* of a root-to-terminal path is the parity of the complement
    bits along it (even parity = 1).  The classical BDS dominator
    classes therefore become parity conditions:

    * ``to_one`` — 1-dominators: every even-parity (value-1) path
      passes through the node (AND-decomposition candidates);
    * ``to_zero`` — 0-dominators: every odd-parity (value-0) path
      passes through the node (OR-decomposition candidates);
    * ``all_paths`` — nodes on every path regardless of parity
      (x-dominator candidates).
    """

    to_one: set[int] = field(default_factory=set)
    to_zero: set[int] = field(default_factory=set)

    @property
    def all_paths(self) -> set[int]:
        return self.to_one & self.to_zero


def path_dominators(mgr: BDD, root: int) -> PathDominators:
    """Compute parity-aware dominator sets for ``root``.

    Uses per-candidate reachability over (node, parity) states; the
    BDDs handled here are small (network partitioning caps their size),
    so the O(N^2) formulation is acceptable and obviously correct.
    """
    result = PathDominators()
    root_index = root >> 1
    if root_index == 0:
        return result
    for candidate in mgr.nodes_reachable([root]):
        if candidate == root_index:
            continue
        reachable = _terminal_parities_avoiding(mgr, root, candidate)
        if 0 not in reachable:
            result.to_one.add(candidate)
        if 1 not in reachable:
            result.to_zero.add(candidate)
    return result


def cut_nodes(mgr: BDD, root: int) -> list[int]:
    """Nodes on *every* root-to-terminal path (both parities); see
    :func:`path_dominators`."""
    return sorted(path_dominators(mgr, root).all_paths)


def _terminal_parities_avoiding(mgr: BDD, root: int, banned: int) -> set[int]:
    """Parities (0 = value 1, 1 = value 0) of root-to-terminal paths
    that avoid node ``banned``."""
    seen: set[tuple[int, int]] = set()
    found: set[int] = set()
    stack = [(root >> 1, root & 1)]
    while stack:
        index, parity = stack.pop()
        if index == banned:
            continue
        if index == 0:
            found.add(parity)
            if len(found) == 2:
                break
            continue
        if (index, parity) in seen:
            continue
        seen.add((index, parity))
        _, high, low = mgr.node_fields(index)
        stack.append((high >> 1, parity ^ (high & 1)))
        stack.append((low >> 1, parity ^ (low & 1)))
    return found
