"""Pure-Python ROBDD package (the BDS-MAJ substrate).

Public surface:

* :class:`BDD` — the manager (nodes, ITE, Boolean operators, evaluation);
* :func:`restrict` / :func:`constrain` — generalized cofactors
  (Theorem 3.3 seeds);
* dominator analysis — certified AND/OR/XOR decompositions and the
  balanced :func:`xor_split` used by the γ optimization phase;
* :func:`replace_node` / :func:`edge_statistics` — structural rewrites
  and fan-in counts behind the m-dominator search;
* :func:`sift` / :meth:`BDD.sift` — in-place Rudell sifting (per-level
  subtables + adjacent level swaps), with :func:`reorder` /
  :func:`sift_rebuild` as the rebuild-based constructions;
* :func:`to_dot` — Graphviz export (Figure 1);
* :class:`BddArena` — read-only shared-memory snapshots of the flat
  node-store arrays, so pool workers copy-on-miss instead of rebuilding
  (the serving layer's cross-process sharing substrate);
* :class:`SharedNodeStore` — the *writable* shared unique table:
  cross-process find-or-create over the same flat columns, striped
  insert locks, lock-free hit path (``BDD(store=...)`` targets it).
"""

from .arena import (
    ArenaBinding,
    ArenaError,
    BddArena,
    SharedNodeStore,
    SharedStoreFull,
    SharedStoreHandle,
    WorkerArenaSpec,
    attach_worker_arena,
    current_arena,
    current_store,
)
from .cofactor import CareSetError, constrain, generalized_cofactor, restrict
from .dominators import (
    KIND_AND,
    KIND_OR,
    KIND_XOR,
    DominatorDecomposition,
    best_simple_decomposition,
    classify_cut_node,
    find_simple_decompositions,
    simple_dominator_nodes,
    xor_split,
)
from .dot import to_dot
from .manager import (
    BDD,
    BDDError,
    CACHE_POLICIES,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_MAX_GROWTH,
    DEFAULT_MAX_PASSES,
    DEFAULT_REORDER_THRESHOLD,
    OperationCache,
    SiftResult,
    TERMINAL_LEVEL,
    combine_cache_stats,
    maj3,
)
from .isop import bdd_isop, isop_cover_rows
from .quantify import count_paths, exists, forall, iter_cubes
from .reorder import (
    reorder,
    sift,
    sift_converge,
    sift_groups,
    sift_rebuild,
    symmetry_groups,
)
from .substitute import (
    EdgeStatistics,
    NodeFanin,
    PathDominators,
    cut_nodes,
    edge_statistics,
    function_at,
    path_dominators,
    replace_node,
)

__all__ = [
    "ArenaBinding",
    "ArenaError",
    "BDD",
    "BDDError",
    "BddArena",
    "CACHE_POLICIES",
    "SharedNodeStore",
    "SharedStoreFull",
    "SharedStoreHandle",
    "WorkerArenaSpec",
    "attach_worker_arena",
    "current_arena",
    "current_store",
    "CareSetError",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_MAX_GROWTH",
    "DEFAULT_MAX_PASSES",
    "DEFAULT_REORDER_THRESHOLD",
    "SiftResult",
    "DominatorDecomposition",
    "EdgeStatistics",
    "OperationCache",
    "KIND_AND",
    "KIND_OR",
    "KIND_XOR",
    "NodeFanin",
    "PathDominators",
    "TERMINAL_LEVEL",
    "path_dominators",
    "bdd_isop",
    "best_simple_decomposition",
    "classify_cut_node",
    "combine_cache_stats",
    "constrain",
    "count_paths",
    "cut_nodes",
    "edge_statistics",
    "exists",
    "forall",
    "find_simple_decompositions",
    "function_at",
    "isop_cover_rows",
    "iter_cubes",
    "generalized_cofactor",
    "maj3",
    "reorder",
    "replace_node",
    "restrict",
    "sift",
    "sift_converge",
    "sift_groups",
    "sift_rebuild",
    "simple_dominator_nodes",
    "symmetry_groups",
    "to_dot",
    "xor_split",
]
