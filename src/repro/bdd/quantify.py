"""Quantification and cube enumeration on BDDs.

Not required by Algorithm 1 itself, but standard equipment of a BDD
package this size: the restrict operator already quantifies internally,
verification scripts want ``exists``/``forall``, and cube enumeration
backs debugging and don't-care analysis.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .manager import BDD


def exists(mgr: BDD, f: int, names: Iterable[str]) -> int:
    """Existential quantification: OR of cofactors over ``names``.

    Delegates to :meth:`BDD.exists_at`, whose recursion is memoized in
    the manager's unified operation cache alongside ``ite``/``cofactor``.
    """
    levels = sorted((mgr.level_of(name) for name in names), reverse=True)
    result = f
    for level in levels:
        result = mgr.exists_at(result, level)
    return result


def forall(mgr: BDD, f: int, names: Iterable[str]) -> int:
    """Universal quantification: AND of cofactors over ``names``."""
    return exists(mgr, f ^ 1, names) ^ 1


def iter_cubes(mgr: BDD, f: int) -> Iterator[dict[str, bool]]:
    """Enumerate the satisfying cubes of ``f`` (one per BDD path whose
    complement parity evaluates to TRUE).  Variables skipped by a path
    are absent from the cube (don't-cares)."""
    # Depth-first over (edge, assignment-so-far); BDD depth is bounded
    # by the variable count, so recursion is safe here.
    def walk(edge: int, cube: dict[str, bool]) -> Iterator[dict[str, bool]]:
        if edge == mgr.ONE:
            yield dict(cube)
            return
        if edge == mgr.ZERO:
            return
        index = edge >> 1
        level, high, low = mgr.node_fields(index)
        complement = edge & 1
        name = mgr.name_of(level)
        cube[name] = True
        yield from walk(high ^ complement, cube)
        cube[name] = False
        yield from walk(low ^ complement, cube)
        del cube[name]

    yield from walk(f, {})


def count_paths(mgr: BDD, f: int) -> int:
    """Number of TRUE paths (cubes) of ``f`` — a cover-size proxy used
    by tests and diagnostics."""
    cache: dict[int, int] = {}

    def walk(edge: int) -> int:
        if edge == mgr.ONE:
            return 1
        if edge == mgr.ZERO:
            return 0
        cached = cache.get(edge)
        if cached is not None:
            return cached
        index = edge >> 1
        _, high, low = mgr.node_fields(index)
        complement = edge & 1
        result = walk(high ^ complement) + walk(low ^ complement)
        cache[edge] = result
        return result

    return walk(f)
