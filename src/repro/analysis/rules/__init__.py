"""Built-in rule packs.  Importing this package registers every rule
into :data:`repro.analysis.core.REGISTRY`."""

from . import asyncsafety, determinism, engine, resources  # noqa: F401

__all__ = ["asyncsafety", "determinism", "engine", "resources"]
