"""ASY — async-safety rules for ``repro.serve``.

Every coroutine in the serve layer runs on the single event loop; one
blocking call stalls every open connection, heartbeat and shard probe.
Blocking work belongs in the executor (``loop.run_in_executor``) — the
pattern ``SynthesisService.submit_async`` already uses.  The rules flag
the known blockers when called *directly* inside an ``async def``; a
sync ``def`` nested in a coroutine is exempt because it is exactly the
thing handed to the executor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import REGISTRY, Finding, Rule
from ..scopes import ModuleContext

SERVE_MODULES = ("repro.serve",)


class _AsyncCallRule(Rule):
    """Shared shape: flag calls matching a dotted-name set when the
    nearest enclosing function is ``async def``."""

    modules = SERVE_MODULES
    node_types = (ast.Call,)
    targets: frozenset[str] = frozenset()
    hint = ""

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function(node):
            return
        dotted = ctx.resolve_call(node)
        if dotted in self.targets:
            yield self.finding(
                ctx, node, f"{dotted}() called inside async def; {self.hint}"
            )


@REGISTRY.register
class AsyncTimeSleep(_AsyncCallRule):
    """ASY001: ``time.sleep`` on the event loop."""

    id = "ASY001"
    name = "async-time-sleep"
    severity = "error"
    rationale = (
        "time.sleep() in a coroutine freezes the whole event loop; "
        "use await asyncio.sleep()"
    )
    targets = frozenset({"time.sleep"})
    hint = "use await asyncio.sleep()"


@REGISTRY.register
class AsyncBlockingIo(Rule):
    """ASY002: blocking file/socket I/O on the event loop."""

    id = "ASY002"
    name = "async-blocking-io"
    severity = "error"
    rationale = (
        "open()/os.fsync()/socket calls block the loop; offload them "
        "via loop.run_in_executor"
    )
    modules = SERVE_MODULES
    node_types = (ast.Call,)

    _DOTTED = frozenset(
        {
            "os.fsync",
            "os.fdatasync",
            "socket.socket",
            "socket.create_connection",
            "socket.getaddrinfo",
        }
    )

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function(node):
            return
        if ctx.is_builtin_call(node, "open"):
            yield self.finding(
                ctx,
                node,
                "open() called inside async def; run file I/O in the "
                "executor (loop.run_in_executor)",
            )
            return
        dotted = ctx.resolve_call(node)
        if dotted in self._DOTTED:
            yield self.finding(
                ctx,
                node,
                f"{dotted}() called inside async def; run blocking I/O "
                "in the executor (loop.run_in_executor)",
            )


@REGISTRY.register
class AsyncSubprocess(Rule):
    """ASY003: blocking ``subprocess`` calls on the event loop."""

    id = "ASY003"
    name = "async-subprocess"
    severity = "error"
    rationale = (
        "subprocess.run/Popen/etc. block until the child responds; "
        "use asyncio.create_subprocess_exec"
    )
    modules = SERVE_MODULES
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function(node):
            return
        dotted = ctx.resolve_call(node)
        if dotted is not None and (
            dotted == "subprocess" or dotted.startswith("subprocess.")
        ):
            yield self.finding(
                ctx,
                node,
                f"{dotted}() called inside async def; use "
                "asyncio.create_subprocess_exec instead",
            )


@REGISTRY.register
class AsyncPoolJoin(Rule):
    """ASY004: blocking pool/executor teardown on the event loop.

    Flags zero-argument ``.join()`` / ``.terminate()`` method calls
    (the zero-arg shape discriminates process/thread teardown from
    ``str.join(iterable)``) and ``.shutdown(wait=True)``.  Awaited
    calls are exempt — ``await process.wait()`` style teardown is the
    sanctioned idiom.  ``asyncio.subprocess.Process.terminate()`` is
    actually non-blocking, which is why this rule is a *warning*: the
    known-safe sites carry justified suppressions instead of silently
    widening the rule.
    """

    id = "ASY004"
    name = "async-pool-join"
    severity = "warning"
    rationale = (
        "pool.join()/terminate() and executor.shutdown(wait=True) "
        "block until workers exit; drain pools from the executor"
    )
    modules = SERVE_MODULES
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function(node):
            return
        if isinstance(ctx.parent(node), ast.Await):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr in ("join", "terminate") and not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node,
                f".{attr}() called inside async def; worker teardown "
                "blocks the loop — drain via the executor",
            )
        elif attr == "shutdown" and any(
            keyword.arg == "wait"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        ):
            yield self.finding(
                ctx,
                node,
                ".shutdown(wait=True) called inside async def; it joins "
                "every worker thread before returning",
            )
