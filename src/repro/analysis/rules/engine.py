"""ENG — BDD engine invariants.

The mutable node store (``repro.bdd.manager``) keeps three structures
in lock-step: the per-level subtables, the node refcounts, and the
memoized operation cache keyed by node ids.  Two invariants guard
them:

* any function that performs *structural surgery* on ``_subtables``
  (deleting entries or re-pointing slots, as ``swap_adjacent`` and
  ``gc`` do) must flush the op cache in the same function — a stale
  memo whose operands were re-pointed returns a wrong BDD silently
  (ENG001);
* refcount-mutating helpers (``_mk``/``_ref``/``_deref``) are manager
  privates; calling them on a manager object from outside the manager
  module bypasses the accounting the garbage collector and the sift
  engine rely on (ENG002 — a warning, because ``substitute``/
  ``cofactor`` are sanctioned friend modules with justified
  suppressions).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import REGISTRY, Finding, Rule
from ..scopes import ModuleContext


def _touches_subtables(node: ast.AST) -> bool:
    """Does ``node``'s expression chain pass through ``_subtables``?"""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Attribute) and inner.attr == "_subtables":
            return True
        if isinstance(inner, ast.Name) and inner.id == "_subtables":
            return True
    return False


@REGISTRY.register
class SubtableSurgeryWithoutCacheFlush(Rule):
    """ENG001: structural ``_subtables`` surgery without a cache flush."""

    id = "ENG001"
    name = "subtable-surgery-without-cache-flush"
    severity = "error"
    rationale = (
        "deleting or re-pointing subtable slots invalidates memoized "
        "op-cache entries keyed on the old structure; the same function "
        "must clear the cache"
    )
    modules = ("repro.bdd",)
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        surgery: list[ast.stmt] = []
        flushes = False
        for child in ast.walk(node):
            if isinstance(child, ast.Delete) and any(
                _touches_subtables(target) for target in child.targets
            ):
                surgery.append(child)
            elif isinstance(child, ast.Assign) and any(
                isinstance(target, ast.Subscript) and _touches_subtables(target)
                for target in child.targets
            ):
                surgery.append(child)
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                # ._cache.clear() or a clear_caches()-style helper
                if child.func.attr == "clear" and _mentions_cache(child.func.value):
                    flushes = True
                elif "cache" in child.func.attr and "clear" in child.func.attr:
                    flushes = True
        if surgery and not flushes:
            yield self.finding(
                ctx,
                surgery[0],
                f"{node.name}() restructures _subtables but never clears "
                "the op cache; stale memos now alias re-pointed nodes",
            )


def _mentions_cache(expr: ast.AST) -> bool:
    return any(
        isinstance(inner, ast.Attribute) and "cache" in inner.attr
        for inner in ast.walk(expr)
    ) or any(
        isinstance(inner, ast.Name) and "cache" in inner.id
        for inner in ast.walk(expr)
    )


@REGISTRY.register
class RefcountOutsideManager(Rule):
    """ENG002: refcount-mutating manager privates called from outside."""

    id = "ENG002"
    name = "refcount-outside-manager"
    severity = "warning"
    rationale = (
        "_mk/_ref/_deref keep node refcounts and subtables consistent; "
        "callers outside the manager bypass gc/sift accounting (friend "
        "modules carry justified suppressions)"
    )
    modules = ("repro.bdd",)
    exempt_modules = ("repro.bdd.manager",)
    node_types = (ast.Attribute,)

    _HELPERS = ("_mk", "_ref", "_deref")

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        if node.attr not in self._HELPERS:
            return
        # self._mk(...) inside a class that owns the helper is fine;
        # the contract is about reaching into *another* object.
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return
        yield self.finding(
            ctx,
            node,
            f"manager-private {node.attr} accessed outside "
            "repro.bdd.manager; refcount accounting must stay inside "
            "the manager",
        )
