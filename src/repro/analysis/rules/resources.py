"""RES — resource-lifecycle rules.

Shared-memory blocks, journal files and worker pools each have exactly
one sanctioned acquire/release idiom in this repository:

* a worker may *attach* to the published arena only through
  ``repro.bdd.arena._attach_block``, which pairs
  ``SharedMemory(name=...)`` with ``resource_tracker.unregister`` so a
  non-owning process never schedules the segment for unlink (RES001);
* a journal append must hit the platter — ``write`` → ``flush`` →
  ``os.fsync`` — before the HTTP response acknowledges the job, or a
  crash loses an acknowledged submission (RES002);
* pool construction/acquisition must be followed by a terminating
  error path (a ``with`` block or an immediate ``try``), or a raise
  between acquire and release leaks live worker processes (RES003);
* an awaited stream read in the serving layer must be bounded by
  ``asyncio.wait_for`` (or carry a justified suppression), or one
  silent peer pins a handler — and the resources behind it — forever
  (RES004).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import REGISTRY, Finding, Rule
from ..scopes import ModuleContext


@REGISTRY.register
class ShmAttachOutsideArena(Rule):
    """RES001: raw SharedMemory attach outside ``repro.bdd.arena``."""

    id = "RES001"
    name = "shm-attach-outside-arena"
    severity = "error"
    rationale = (
        "attaching SharedMemory(name=...) without the arena's "
        "resource-tracker unregister idiom makes the first worker exit "
        "unlink the segment under everyone else"
    )
    exempt_modules = ("repro.bdd.arena",)
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        dotted = ctx.resolve_call(node)
        if dotted is None or not dotted.endswith("SharedMemory"):
            return
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        creates = (
            isinstance(keywords.get("create"), ast.Constant)
            and keywords["create"].value is True
        )
        if "name" in keywords and not creates:
            yield self.finding(
                ctx,
                node,
                "SharedMemory attach outside repro.bdd.arena; use "
                "arena.attach()/_attach_block, which unregisters the "
                "segment from the resource tracker",
            )


@REGISTRY.register
class JournalWriteWithoutFsync(Rule):
    """RES002: a journal function writing without fsync."""

    id = "RES002"
    name = "journal-write-without-fsync"
    severity = "error"
    rationale = (
        "an acknowledged journal append that never reached the platter "
        "is lost on crash; every .write() path must os.fsync before "
        "the response"
    )
    modules = ("repro.serve.journal",)
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        writes = False
        fsyncs = False
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            if (
                isinstance(child.func, ast.Attribute)
                and child.func.attr == "write"
            ):
                writes = True
            dotted = ctx.resolve_call(child)
            if dotted in ("os.fsync", "os.fdatasync"):
                fsyncs = True
        if writes and not fsyncs:
            yield self.finding(
                ctx,
                node,
                f"journal function {node.name}() calls .write() but "
                "never os.fsync(); the append is not durable",
            )


@REGISTRY.register
class UnguardedPoolAcquire(Rule):
    """RES003: pool construction/acquisition with no error path."""

    id = "RES003"
    name = "unguarded-pool-acquire"
    severity = "warning"
    rationale = (
        "a raise between pool acquire and release leaks live worker "
        "processes; acquire inside `with` or follow immediately with "
        "try/finally"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in ("Pool", "acquire"):
            return
        if node.func.attr == "acquire":
            # Only pool-manager acquisition is in scope; lock.acquire()
            # and friends are someone else's contract.
            dotted = ctx.resolve_call(node)
            if dotted is None or "pool" not in dotted.lower():
                return
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith, ast.Try)):
                return
        following = ctx.next_statement(node)
        if isinstance(following, ast.Try):
            return
        yield self.finding(
            ctx,
            node,
            f".{node.func.attr}() result has no terminating error path; "
            "wrap in `with` or follow immediately with try/finally",
        )


#: Stream-read coroutine methods of asyncio readers / subprocess pipes.
_AWAITED_READ_METHODS = frozenset({"read", "readline", "readexactly", "readuntil"})


@REGISTRY.register
class UnboundedAwaitedRead(Rule):
    """RES004: awaited stream read without an ``asyncio.wait_for`` bound."""

    id = "RES004"
    name = "unbounded-awaited-read"
    severity = "error"
    rationale = (
        "an awaited socket/pipe read with no wait_for bound lets one "
        "silent peer pin a serve handler (and its connection, job and "
        "worker resources) forever; reads that are unbounded by design "
        "carry a justified suppression"
    )
    modules = ("repro.serve",)
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _AWAITED_READ_METHODS:
            return
        # Walk outward (innermost-first) toward the enclosing function:
        # a wait_for call anywhere between the read and its await bounds
        # it; an Await reached without one is the unbounded pattern.
        # Synchronous reads (file.read() with no await) never match.
        awaited = False
        for ancestor in ctx.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                break
            if isinstance(ancestor, ast.Await):
                awaited = True
                continue
            if isinstance(ancestor, ast.Call):
                dotted = ctx.resolve_call(ancestor)
                if dotted == "asyncio.wait_for":
                    return
        if awaited:
            yield self.finding(
                ctx,
                node,
                f"awaited .{node.func.attr}() has no asyncio.wait_for "
                "bound; a silent peer pins this handler forever",
            )
