"""DET — determinism rules.

The repository's load-bearing contract (PRs 1-7) is that batch and
serve reports are **byte-identical** across worker counts, warm vs
cold pools, shards and journal replay.  Three language features break
that silently, so in the report-affecting modules (``repro.flows``,
``repro.network``, ``repro.bdd``, ``repro.serve.wire``) they are
banned:

* iterating a ``set`` in an order-sensitive position (DET001) — set
  order varies with ``PYTHONHASHSEED`` and insertion history;
* the builtin ``hash()`` (DET002) — salted per process for str/bytes,
  so any hash-derived key or counter differs between workers;
* wall-clock reads (DET003) — timestamps flowing into report fields
  outside the sanctioned ``timings`` gate differ run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import REGISTRY, Finding, Rule
from ..scopes import ModuleContext, order_insensitive_builtins

#: The report-affecting modules (ISSUE 8 tentpole list).
DET_MODULES = ("repro.flows", "repro.network", "repro.bdd", "repro.serve.wire")


@REGISTRY.register
class UnsortedSetIteration(Rule):
    """DET001: a set iterated where order reaches the output."""

    id = "DET001"
    name = "unsorted-set-iteration"
    severity = "error"
    rationale = (
        "set iteration order varies with PYTHONHASHSEED; in report-"
        "affecting code it must pass through sorted() first"
    )
    modules = DET_MODULES
    node_types = (ast.For, ast.AsyncFor, ast.comprehension, ast.Call, ast.Starred)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            candidates = [node.iter]
        elif isinstance(node, ast.comprehension):
            candidates = [node.iter]
        elif isinstance(node, ast.Starred):
            candidates = [node.value]
        else:  # Call — order-sensitive consumers taking an iterable
            assert isinstance(node, ast.Call)
            candidates = list(self._call_iterables(node, ctx))
        scope = None
        for expr in candidates:
            if scope is None:
                scope = ctx.enclosing_function(expr) or ctx.tree
            if ctx.is_set_expression(expr, scope):
                yield self.finding(
                    ctx,
                    expr,
                    "set iterated in an order-sensitive position; wrap in "
                    "sorted() (or consume order-insensitively)",
                )

    def _call_iterables(self, node: ast.Call, ctx: ModuleContext):
        """Arguments of ``node`` whose iteration order survives into
        the result — ``list()``, ``tuple()``, ``enumerate()``,
        ``zip()`` and ``str.join()``."""
        for name in ("list", "tuple", "enumerate"):
            if ctx.is_builtin_call(node, name) and node.args:
                yield node.args[0]
                return
        if ctx.is_builtin_call(node, "zip"):
            yield from node.args
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            yield node.args[0]


@REGISTRY.register
class BuiltinHash(Rule):
    """DET002: builtin ``hash()`` anywhere in report-affecting code."""

    id = "DET002"
    name = "builtin-hash"
    severity = "error"
    rationale = (
        "hash() is salted per process for str/bytes; cache keys and "
        "counters derived from it differ across workers — use "
        "hashlib or int-only keys"
    )
    modules = DET_MODULES
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if ctx.is_builtin_call(node, "hash"):
            yield self.finding(
                ctx,
                node,
                "builtin hash() is PYTHONHASHSEED-dependent; use hashlib "
                "digests or structural int keys",
            )


#: Wall-clock reads.  ``time.perf_counter``/``monotonic`` are fine:
#: they only ever feed the explicitly non-deterministic timings gate.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@REGISTRY.register
class WallClockInReportCode(Rule):
    """DET003: wall-clock reads in report-affecting modules."""

    id = "DET003"
    name = "wall-clock-read"
    severity = "warning"
    rationale = (
        "wall-clock values flowing into report fields differ run to "
        "run; only the timings gate may carry non-deterministic data"
    )
    modules = DET_MODULES
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        dotted = ctx.resolve_call(node)
        if dotted in _WALL_CLOCK:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {dotted}() in report-affecting code; "
                "keep non-deterministic values behind the timings gate",
            )
