"""Drive the rules over files: parse, dispatch, suppress, collect.

:func:`analyze_source` is the core (and the fixture-test entry point):
parse one buffer, run every applicable rule over the node types it
declared, apply inline suppressions, and return an
:class:`AnalysisResult`.  :func:`analyze_paths` maps that over files
and directories, deriving each file's dotted module name by walking
``__init__.py`` markers upward so rule module-scoping works no matter
where the tree is checked out.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .core import REGISTRY, Finding, Rule
from .scopes import ModuleContext
from .suppress import apply_suppressions, scan_suppressions

PARSE_RULE_ID = "PARSE001"
PARSE_RULE_NAME = "unparseable-source"
PARSE_RATIONALE = "a file the analyzer cannot parse is an unchecked file"


@dataclass
class AnalysisResult:
    """Findings of one run, split by suppression state."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files

    def sort(self) -> None:
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)

    @property
    def clean(self) -> bool:
        return not self.findings


def analyze_source(
    source: str,
    module: str = "fixture",
    path: str = "<string>",
    rules: "list[Rule] | None" = None,
) -> AnalysisResult:
    """Analyze one source buffer (the unit the fixture tests drive)."""
    chosen = REGISTRY.rules() if rules is None else rules
    result = AnalysisResult(files=1)
    suppressions, sup_findings = scan_suppressions(source, path, module)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=PARSE_RULE_ID,
                name=PARSE_RULE_NAME,
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                module=module,
                message=f"cannot parse: {exc.msg}",
            )
        )
        result.findings.extend(sup_findings)
        result.sort()
        return result

    ctx = ModuleContext(tree, module, path, source)
    applicable = [rule for rule in chosen if rule.applies_to(module)]
    raw: list[Finding] = []
    if applicable:
        for node in ast.walk(tree):
            for rule in applicable:
                if rule.node_types and not isinstance(node, rule.node_types):
                    continue
                raw.extend(rule.check(node, ctx))
    active, suppressed = apply_suppressions(raw, suppressions)
    # SUP001 findings are meta: never themselves suppressible.
    result.findings.extend(active)
    result.findings.extend(sup_findings)
    result.suppressed.extend(suppressed)
    result.sort()
    return result


def analyze_file(path: str, rules: "list[Rule] | None" = None) -> AnalysisResult:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(
        source, module=module_name_for(path), path=path, rules=rules
    )


def analyze_paths(paths: "list[str]", rules: "list[Rule] | None" = None) -> AnalysisResult:
    """Analyze files and (recursively) directories of ``*.py`` files."""
    result = AnalysisResult()
    for target in sorted(iter_python_files(paths)):
        result.extend(analyze_file(target, rules=rules))
    result.sort()
    return result


def iter_python_files(paths: "list[str]"):
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        elif path.endswith(".py"):
            yield path


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, found by walking up while the
    parent directory holds an ``__init__.py``.  Falls back to the bare
    stem for scripts outside any package."""
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem
