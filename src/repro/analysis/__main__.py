"""``python -m repro.analysis`` — run the bdslint CLI."""

from .cli import run

raise SystemExit(run(prog="python -m repro.analysis"))
