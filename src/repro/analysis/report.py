"""Reporters: human text and machine JSON (``bdslint-report/v1``).

Both render the same :class:`~repro.analysis.runner.AnalysisResult`;
the JSON schema is frozen (tests/analysis asserts it) because the CI
``lint-contracts`` job and any future dashboards parse it.
"""

from __future__ import annotations

import json
from collections import Counter

from .core import SEVERITIES, Finding
from .runner import AnalysisResult

JSON_SCHEMA = "bdslint-report/v1"


def render_text(result: AnalysisResult, *, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col + 1}: "
                f"{finding.rule} [suppressed] {finding.message} "
                f"(justification: {finding.justification})"
            )
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _summary_line(result: AnalysisResult) -> str:
    if result.clean:
        body = "no unsuppressed findings"
    else:
        by_severity = Counter(f.severity for f in result.findings)
        body = ", ".join(
            f"{by_severity[severity]} {severity}(s)"
            for severity in SEVERITIES
            if by_severity[severity]
        )
    suffix = (
        f"; {len(result.suppressed)} suppressed" if result.suppressed else ""
    )
    return f"bdslint: {result.files} file(s) checked, {body}{suffix}"


def render_json(result: AnalysisResult) -> str:
    payload = {
        "schema": JSON_SCHEMA,
        "findings": [f.to_payload() for f in result.findings],
        "suppressed": [f.to_payload() for f in result.suppressed],
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": _ordered_counts(f.rule for f in result.findings),
            "by_severity": _ordered_counts(f.severity for f in result.findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _ordered_counts(values) -> dict[str, int]:
    counts = Counter(values)
    return {key: counts[key] for key in sorted(counts)}


def exit_code(result: AnalysisResult) -> int:
    """0 = clean (suppressed findings do not fail the run), 1 = findings."""
    return 0 if result.clean else 1


__all__ = [
    "JSON_SCHEMA",
    "render_text",
    "render_json",
    "exit_code",
    "Finding",
]
