"""Inline suppressions: ``# bdslint: disable=RULE1,RULE2 -- why``.

A suppression silences named rules on its own line, and it **must**
carry a justification after ``--``.  A disable comment without one is
itself a finding (``SUP001``) *and* the suppression is ignored — the
violation it tried to hide is still reported.  That keeps the
suppression inventory reviewable: every silenced finding names the
contract it waives and the reason the waiver is sound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .core import Finding

#: Matches a disable comment anywhere on a line.  The rule list is
#: comma-separated ids; everything after `` -- `` is the justification.
_DISABLE_RE = re.compile(
    r"#\s*bdslint:\s*disable=(?P<rules>[A-Z0-9_,\s]+?)"
    r"(?:\s+--[ \t]*(?P<why>.*?))?\s*$"
)

SUP_RULE_ID = "SUP001"
SUP_RULE_NAME = "suppression-without-justification"
SUP_RATIONALE = (
    "every waived contract must say why the waiver is sound; a bare "
    "disable is unreviewable and is ignored"
)


@dataclass(frozen=True)
class Suppression:
    """One justified disable comment."""

    line: int
    rules: frozenset[str]
    justification: str

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and finding.rule in self.rules


def scan_suppressions(
    source: str, path: str, module: str
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every disable comment in ``source``.

    Returns the usable (justified) suppressions and the ``SUP001``
    findings for unjustified ones.
    """
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        justification = match.group("why")
        if not justification:
            findings.append(
                Finding(
                    rule=SUP_RULE_ID,
                    name=SUP_RULE_NAME,
                    severity="error",
                    path=path,
                    line=lineno,
                    col=match.start(),
                    module=module,
                    message=(
                        "bdslint disable comment lacks a justification "
                        "(append ' -- <reason>'); the suppression is ignored"
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(line=lineno, rules=rules, justification=justification)
        )
    return suppressions, findings


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into (active, suppressed).

    Suppressed findings are kept — stamped with their justification —
    so reporters can show the waived inventory instead of losing it.
    """
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        match = next((s for s in suppressions if s.covers(finding)), None)
        if match is None:
            active.append(finding)
        else:
            suppressed.append(
                Finding(
                    rule=finding.rule,
                    name=finding.name,
                    severity=finding.severity,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    module=finding.module,
                    message=finding.message,
                    justification=match.justification,
                )
            )
    return active, suppressed
