"""Per-module analysis context: parents, scopes, qualified names.

:class:`ModuleContext` wraps one parsed source file with the lookups
every rule needs:

* **parent links** — ``ast`` has none, so one pass records them and
  :meth:`ancestors` / :meth:`enclosing_function` walk the chain;
* **qualified-name resolution** — the import table (``import x.y``,
  ``from x import y as z``, relative imports resolved against the
  module's own dotted name) feeds :meth:`resolve`, which turns a
  ``Name``/``Attribute`` chain into a dotted path such as
  ``"time.sleep"`` regardless of how the module spelled it;
* **async scope** — :meth:`in_async_function` answers "does this node
  execute on the event loop?" by finding the nearest enclosing
  function definition;
* **set-typed locals** — :meth:`set_locals` infers which local names of
  a function definitely hold ``set``/``frozenset`` values (direct
  literals/constructors/annotations only, never guesses), the basis of
  the DET iteration rule.
"""

from __future__ import annotations

import ast
from functools import lru_cache


class ModuleContext:
    """Everything the rules may ask about one module."""

    def __init__(self, tree: ast.Module, module: str, path: str, source: str) -> None:
        self.tree = tree
        self.module = module
        self.path = path
        self.source = source
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._imports = _import_table(tree, module)
        self._set_locals_cache: dict[ast.AST, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST):
        """Parents from the immediate one up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest function definition ``node`` executes inside
        (``None`` at module or class level)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_async_function(self, node: ast.AST) -> bool:
        """True when the code at ``node`` runs on the event loop: its
        nearest enclosing function is ``async def``.  A sync ``def``
        nested inside an ``async def`` is its own (thread-runnable)
        scope, so it does not count."""
        return isinstance(self.enclosing_function(node), ast.AsyncFunctionDef)

    def enclosing_statement(self, node: ast.AST) -> ast.stmt | None:
        """The statement containing ``node`` (itself, if a statement)."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self._parents.get(current)
        return current

    def next_statement(self, node: ast.AST) -> ast.stmt | None:
        """The statement following ``node``'s enclosing statement in the
        same block, if any (the RES pool rule's acquire-then-``try``
        idiom check)."""
        statement = self.enclosing_statement(node)
        if statement is None:
            return None
        parent = self._parents.get(statement)
        if parent is None:
            return None
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, field_name, None)
            if isinstance(block, list) and statement in block:
                index = block.index(statement)
                if index + 1 < len(block):
                    following = block[index + 1]
                    return following if isinstance(following, ast.stmt) else None
        return None

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a ``Name``/``Attribute`` chain with the head
        mapped through the import table (``None`` when the chain starts
        at anything but a plain name — a call result, subscript, ...)."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self._imports.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> str | None:
        return self.resolve(node.func)

    def is_builtin_call(self, node: ast.Call, name: str) -> bool:
        """True for a call to the *builtin* ``name`` — a bare ``Name``
        that no import rebinds (local shadowing is not tracked; the
        rules using this accept that rare false positive)."""
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == name
            and node.func.id not in self._imports
        )

    # ------------------------------------------------------------------
    # Set-typed locals (DET iteration support)
    # ------------------------------------------------------------------
    def set_locals(self, fn: ast.AST) -> frozenset[str]:
        """Local names of ``fn`` that definitely hold set values.

        Only direct evidence counts: assignment from a set display /
        comprehension / ``set()`` / ``frozenset()`` call (possibly
        through ``|&-^`` operators over such values), or an explicit
        ``set``/``frozenset`` annotation.  Names also assigned anything
        else are dropped — one non-set binding makes the inference
        unsafe."""
        cached = self._set_locals_cache.get(fn)
        if cached is not None:
            return cached
        set_named: set[str] = set()
        other_named: set[str] = set()

        def scan(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue  # nested scopes own their names
                if isinstance(child, ast.Assign):
                    names = [
                        target.id
                        for target in child.targets
                        if isinstance(target, ast.Name)
                    ]
                    bucket = (
                        set_named
                        if self.is_set_expression(child.value, fn, _resolving=True)
                        else other_named
                    )
                    bucket.update(names)
                elif isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    annotation = child.annotation
                    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
                    dotted = self.resolve(base)
                    if dotted in ("set", "frozenset", "typing.Set", "typing.FrozenSet"):
                        set_named.add(child.target.id)
                    else:
                        other_named.add(child.target.id)
                scan(child)

        scan(fn)
        result = frozenset(set_named - other_named)
        self._set_locals_cache[fn] = result
        return result

    def is_set_expression(
        self, expr: ast.AST, scope: ast.AST | None, _resolving: bool = False
    ) -> bool:
        """Does ``expr`` definitely evaluate to a set?  Structural
        evidence only (see :meth:`set_locals`); ``scope`` supplies the
        local-name inference (``None`` skips it)."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            return self.is_builtin_call(expr, "set") or self.is_builtin_call(
                expr, "frozenset"
            )
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expression(
                expr.left, scope, _resolving
            ) or self.is_set_expression(expr.right, scope, _resolving)
        if (
            not _resolving
            and scope is not None
            and isinstance(expr, ast.Name)
        ):
            return expr.id in self.set_locals(scope)
        return False


def _import_table(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> dotted path, from the module's import statements."""
    table: dict[str, str] = {}
    package_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import x.y`` binds ``x`` — to the top package.
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb ``level`` packages from here.
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                table[bound] = f"{base}.{alias.name}" if base else alias.name
    return table


@lru_cache(maxsize=None)
def order_insensitive_builtins() -> frozenset[str]:
    """Builtin consumers whose result does not depend on iteration
    order — iterating a set into these is deterministic."""
    return frozenset(
        {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
    )
