"""``bdsmaj lint`` / ``python -m repro.analysis`` command line."""

from __future__ import annotations

import argparse
import sys

from .core import REGISTRY
from .report import exit_code, render_json, render_text
from .runner import analyze_paths


def build_parser(prog: str = "bdslint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Project-contract static analysis: determinism (DET), "
            "async-safety (ASY), resource lifecycle (RES) and BDD "
            "engine invariants (ENG)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help=(
            "only run matching rules; exact id (DET001) or family "
            "prefix (DET); repeatable"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings with their justifications",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run(argv: "list[str] | None" = None, prog: str = "bdslint") -> int:
    args = build_parser(prog).parse_args(argv)
    if args.list_rules:
        for rule in REGISTRY.rules():
            print(f"{rule.id}  {rule.name} [{rule.severity}]")
            print(f"        {rule.rationale}")
        return 0
    try:
        rules = REGISTRY.select(args.select)
    except ValueError as exc:
        print(f"bdslint: {exc}", file=sys.stderr)
        return 2
    result = analyze_paths(args.paths, rules=rules)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return exit_code(result)


def main() -> None:
    raise SystemExit(run())


if __name__ == "__main__":
    main()
