"""``repro.analysis`` — bdslint, project-contract static analysis.

The framework (:mod:`~repro.analysis.core`, :mod:`~repro.analysis.scopes`,
:mod:`~repro.analysis.runner`, :mod:`~repro.analysis.report`,
:mod:`~repro.analysis.suppress`) plus the built-in rule packs under
:mod:`~repro.analysis.rules`.  Importing this package loads the packs,
so :data:`REGISTRY` is fully populated after ``import repro.analysis``.
"""

from .core import REGISTRY, Finding, Rule, RuleRegistry
from .report import JSON_SCHEMA, render_json, render_text
from .runner import AnalysisResult, analyze_file, analyze_paths, analyze_source
from . import rules  # noqa: F401  (imports register the built-in packs)

__all__ = [
    "REGISTRY",
    "Finding",
    "Rule",
    "RuleRegistry",
    "JSON_SCHEMA",
    "render_json",
    "render_text",
    "AnalysisResult",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
]
