"""Rule model and registry of the ``bdslint`` framework.

A :class:`Rule` encodes one project contract as an AST check.  Rules
declare the node types they want to see (:attr:`Rule.node_types`) and a
module scope (:attr:`Rule.modules`, dotted prefixes; empty = every
module), and yield :class:`Finding` objects from :meth:`Rule.check`.
The :class:`RuleRegistry` is the single catalog the runner, the CLI's
``--list-rules`` / ``--select`` and the README rule table all read.

Rule ids are grouped by contract family:

* ``DET*`` — determinism: the batch/serve reports are byte-identical
  across worker counts, pools, shards and replay, so report-affecting
  modules must not iterate unsorted sets, use ``hash()`` or read wall
  clocks outside the ``timings`` gate;
* ``ASY*`` — async safety: ``repro.serve`` handlers run on the event
  loop, where a blocking call freezes every connection;
* ``RES*`` — resource lifecycle: shared-memory blocks, journal files
  and worker pools all have one sanctioned acquire/release idiom;
* ``ENG*`` — engine invariants of the mutable BDD node store;
* ``SUP``/``PARSE`` — meta findings of the analyzer itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .scopes import ModuleContext

#: Severity levels, most severe first (the reporters sort by this).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    module: str
    message: str
    #: Justification text, filled only for suppressed findings.
    justification: str | None = None

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_payload(self) -> dict[str, object]:
        """JSON-reporter entry (stable schema; see tests/analysis)."""
        payload: dict[str, object] = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "module": self.module,
            "message": self.message,
        }
        if self.justification is not None:
            payload["justification"] = self.justification
        return payload


class Rule:
    """Base class: one machine-checked project contract.

    Subclasses set the class attributes and implement :meth:`check`;
    the runner instantiates each rule once per process and calls
    ``check`` for every AST node matching :attr:`node_types` in every
    module matching :attr:`modules` (minus :attr:`exempt_modules`).
    """

    #: Stable id, e.g. ``"DET001"`` (what suppressions name).
    id: str = ""
    #: Kebab-case slug for humans, e.g. ``"unsorted-set-iteration"``.
    name: str = ""
    severity: str = "error"
    #: One-line rationale (the README rule catalog renders these).
    rationale: str = ""
    #: Dotted module prefixes the rule applies to (empty = everywhere).
    modules: tuple[str, ...] = ()
    #: Dotted module prefixes exempt even when ``modules`` matches
    #: (e.g. the one module that owns the sanctioned idiom).
    exempt_modules: tuple[str, ...] = ()
    #: AST node classes dispatched to :meth:`check`.
    node_types: tuple[type, ...] = ()

    def applies_to(self, module: str) -> bool:
        if any(_prefix_match(module, prefix) for prefix in self.exempt_modules):
            return False
        if not self.modules:
            return True
        return any(_prefix_match(module, prefix) for prefix in self.modules)

    def check(self, node: ast.AST, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            module=ctx.module,
            message=message,
        )


def _prefix_match(module: str, prefix: str) -> bool:
    """Dotted-prefix containment: ``repro.serve`` matches itself and
    ``repro.serve.wire`` but never ``repro.server``."""
    return module == prefix or module.startswith(prefix + ".")


@dataclass
class RuleRegistry:
    """The rule catalog.  One global instance (:data:`REGISTRY`) holds
    every built-in rule; tests build private registries."""

    _rules: dict[str, Rule] = field(default_factory=dict)

    def register(self, rule_class: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and catalog a rule."""
        rule = rule_class()
        if not rule.id or not rule.name:
            raise ValueError(f"rule {rule_class.__name__} needs an id and a name")
        if rule.severity not in SEVERITIES:
            raise ValueError(f"rule {rule.id}: unknown severity {rule.severity!r}")
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self._rules[rule.id] = rule
        return rule_class

    def get(self, rule_id: str) -> Rule | None:
        return self._rules.get(rule_id)

    def rules(self) -> list[Rule]:
        """Every registered rule, sorted by id."""
        return [self._rules[rule_id] for rule_id in sorted(self._rules)]

    def ids(self) -> frozenset[str]:
        return frozenset(self._rules)

    def select(self, patterns: "list[str] | None") -> list[Rule]:
        """Rules whose id matches any pattern (exact id or prefix, e.g.
        ``DET`` selects the whole determinism pack); ``None`` = all."""
        if patterns is None:
            return self.rules()
        chosen = [
            rule
            for rule in self.rules()
            if any(rule.id == p or rule.id.startswith(p) for p in patterns)
        ]
        unknown = [
            p
            for p in patterns
            if not any(rule.id == p or rule.id.startswith(p) for rule in self.rules())
        ]
        if unknown:
            raise ValueError(f"unknown rule selector(s): {', '.join(sorted(unknown))}")
        return chosen


#: The global registry the built-in rule packs register into.
REGISTRY = RuleRegistry()
