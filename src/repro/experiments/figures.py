"""Figure reproductions.

* Figure 1 — the BDD of ``F = ab + bc + ac`` (paper order c, b, a) with
  its non-trivial m-dominator highlighted; emitted as Graphviz dot.
* Figure 2 — the majority balancing walkthrough of Sections III.C/D:
  ``Maj(a, b+c, bc)`` rebalanced to ``Maj(a, b, c)``.
* Figure 3 — the BDS-MAJ flow stage trace on a real benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bdd import BDD, to_dot
from ..bdd.substitute import function_at
from ..benchgen import build_benchmark
from ..core import construct, decompose_majority, find_m_dominators, optimize
from ..flows import BdsFlowConfig, bds_optimize


@dataclass
class Figure1Result:
    dot: str
    dominator_function: str
    num_candidates: int


def figure1() -> Figure1Result:
    """Reproduce Figure 1 (m-dominator of the 3-input majority)."""
    mgr = BDD(["c", "b", "a"])  # the paper draws the order c, b, a
    f = mgr.from_expr("a & b | b & c | a & c")
    candidates = find_m_dominators(mgr, f)
    highlight = [candidate.node for candidate in candidates]
    dot = to_dot(mgr, {"F = ab+bc+ac": f}, highlight=highlight, graph_name="figure1")
    names = [
        mgr.top_var_name(function_at(mgr, candidate.node)) for candidate in candidates
    ]
    return Figure1Result(dot, ", ".join(names), len(candidates))


@dataclass
class Figure2Result:
    steps: list[str]


def figure2() -> Figure2Result:
    """Walk through the paper's balancing example."""
    mgr = BDD(["a", "b", "c"])
    f = mgr.from_expr("a & b | b & c | a & c")
    fa = mgr.var("a")
    steps = [f"F = ab + bc + ac (|F| = {mgr.size(f)})", "alpha: Fa = a (m-dominator)"]
    constructed = construct(mgr, f, fa)
    def describe(edge: int) -> str:
        table = {
            mgr.from_expr("b | c"): "b + c",
            mgr.from_expr("b & c"): "bc",
            mgr.var("a"): "a",
            mgr.var("b"): "b",
            mgr.var("c"): "c",
        }
        return table.get(edge, f"<bdd size {mgr.size(edge)}>")

    steps.append(
        f"beta: Fb = ITE(Fa^F, F, F|Fa) = {describe(constructed.fb)}; "
        f"Fc = ITE(Fa^F, F, F|Fa') = {describe(constructed.fc)}"
    )
    optimized = optimize(mgr, f, constructed)
    steps.append(
        "gamma: Fx = Fb^Fc = b^c -> (M, K) = (b, c)-split; "
        f"after ITE rebalancing: Fb = {describe(optimized.fb)}, "
        f"Fc = {describe(optimized.fc)}"
    )
    steps.append(
        f"omega: best triple sizes = {sorted(optimized.sizes(mgr))} "
        "=> F = Maj(a, b, c)"
    )
    rebuilt = mgr.maj(*optimized.parts())
    steps.append(f"certified: Maj(Fa,Fb,Fc) == F is {rebuilt == f}")
    return Figure2Result(steps)


@dataclass
class Figure3Result:
    benchmark: str
    lines: list[str]


def figure3(benchmark_key: str = "alu2") -> Figure3Result:
    """Print the executed BDS-MAJ stage sequence (the flow of Figure 3)."""
    network = build_benchmark(benchmark_key)
    decomposed, counts, trace = bds_optimize(network, BdsFlowConfig())
    lines = [
        f"input network: {network.num_nodes} nodes, "
        f"{len(network.inputs)} PIs, {len(network.outputs)} POs",
        f"[1] network partitioning      -> {trace.supernodes} supernodes",
        f"[2] variable reordering       -> {trace.sifted} supernodes sifted",
        "[3] BDD decomposition",
        f"      majority decompositions : {trace.majority_steps}",
        f"      AND/OR dominator splits : {trace.and_or_steps}",
        f"      XOR/XNOR splits         : {trace.xor_steps}",
        f"      MUX cofactor fallbacks  : {trace.mux_steps}",
        f"[4] factoring trees + sharing -> {trace.tree_nodes} network nodes "
        f"({counts})",
        f"[5] final netlist             -> {decomposed.num_nodes} nodes",
    ]
    return Figure3Result(benchmark_key, lines)
