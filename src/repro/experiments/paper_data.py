"""The paper's published numbers (Tables I and II), transcribed.

Used by the harnesses to print paper-vs-measured comparisons in
EXPERIMENTS.md format.  Benchmarks are keyed like the registry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTable1Row:
    and_: int
    or_: int
    xor: int
    xnor: int
    maj: int
    total: int
    runtime: float


#: Table I: decomposition results, BDS-MAJ and BDS-PGA.
PAPER_TABLE1: dict[str, dict[str, PaperTable1Row]] = {
    "alu2": {
        "bds-maj": PaperTable1Row(45, 99, 4, 10, 13, 171, 0.9),
        "bds-pga": PaperTable1Row(71, 129, 7, 13, 0, 220, 0.4),
    },
    "c6288": {
        "bds-maj": PaperTable1Row(369, 378, 66, 320, 139, 1272, 0.6),
        "bds-pga": PaperTable1Row(711, 764, 65, 355, 0, 1895, 0.6),
    },
    "c1355": {
        "bds-maj": PaperTable1Row(14, 44, 14, 80, 31, 183, 0.1),
        "bds-pga": PaperTable1Row(46, 26, 46, 66, 0, 184, 0.3),
    },
    "dalu": {
        "bds-maj": PaperTable1Row(126, 408, 80, 21, 133, 768, 1.4),
        "bds-pga": PaperTable1Row(463, 895, 25, 62, 0, 1445, 2.3),
    },
    "apex6": {
        "bds-maj": PaperTable1Row(253, 289, 9, 10, 16, 577, 0.4),
        "bds-pga": PaperTable1Row(243, 437, 7, 7, 0, 694, 0.3),
    },
    "vda": {
        "bds-maj": PaperTable1Row(65, 203, 0, 0, 22, 290, 0.2),
        "bds-pga": PaperTable1Row(24, 392, 0, 0, 0, 416, 0.3),
    },
    "f51m": {
        "bds-maj": PaperTable1Row(18, 24, 1, 10, 4, 57, 0.1),
        "bds-pga": PaperTable1Row(26, 41, 1, 7, 0, 75, 0.1),
    },
    "misex3": {
        "bds-maj": PaperTable1Row(337, 704, 0, 1, 21, 1063, 1.0),
        "bds-pga": PaperTable1Row(377, 860, 2, 2, 0, 1241, 0.9),
    },
    "seq": {
        "bds-maj": PaperTable1Row(331, 1175, 0, 0, 55, 1561, 6.7),
        "bds-pga": PaperTable1Row(1159, 1471, 1, 2, 0, 2633, 5.6),
    },
    "bigkey": {
        "bds-maj": PaperTable1Row(400, 1494, 64, 87, 194, 2239, 2.8),
        "bds-pga": PaperTable1Row(1058, 1834, 4, 31, 0, 2927, 4.0),
    },
    "sqrt32": {
        "bds-maj": PaperTable1Row(162, 289, 60, 158, 142, 811, 0.5),
        "bds-pga": PaperTable1Row(254, 471, 74, 132, 0, 931, 0.4),
    },
    "wallace16": {
        "bds-maj": PaperTable1Row(208, 189, 178, 302, 158, 1035, 0.6),
        "bds-pga": PaperTable1Row(491, 785, 169, 259, 0, 1704, 0.4),
    },
    "cla64": {
        "bds-maj": PaperTable1Row(179, 208, 41, 53, 167, 648, 0.1),
        "bds-pga": PaperTable1Row(320, 481, 35, 47, 0, 883, 0.2),
    },
    "rev19": {
        "bds-maj": PaperTable1Row(1223, 2109, 401, 1265, 599, 5597, 13.4),
        "bds-pga": PaperTable1Row(2263, 4199, 383, 1121, 0, 7966, 11.2),
    },
    "div18": {
        "bds-maj": PaperTable1Row(705, 1598, 255, 422, 188, 3168, 7.1),
        "bds-pga": PaperTable1Row(1290, 2918, 136, 308, 0, 4652, 6.4),
    },
    "mac16": {
        "bds-maj": PaperTable1Row(322, 487, 177, 541, 160, 1687, 0.5),
        "bds-pga": PaperTable1Row(532, 891, 187, 365, 0, 1975, 1.4),
    },
    "add4x16": {
        "bds-maj": PaperTable1Row(30, 32, 10, 86, 52, 210, 0.1),
        "bds-pga": PaperTable1Row(87, 89, 9, 85, 0, 270, 0.1),
    },
}

#: Table II: (area um^2, gate count, delay ns) per flow.
PAPER_TABLE2: dict[str, dict[str, tuple[float, int, float]]] = {
    "alu2": {
        "bds-maj": (34.16, 238, 0.34),
        "bds-pga": (40.81, 295, 0.40),
        "abc": (66.50, 503, 0.41),
        "dc": (50.54, 373, 0.57),
    },
    "c6288": {
        "bds-maj": (348.78, 1422, 0.98),
        "bds-pga": (360.78, 1441, 1.11),
        "abc": (355.18, 1350, 1.08),
        "dc": (355.11, 1453, 1.26),
    },
    "c1355": {
        "bds-maj": (55.23, 188, 0.30),
        "bds-pga": (56.42, 200, 0.33),
        "abc": (60.69, 213, 0.29),
        "dc": (55.44, 190, 0.31),
    },
    "dalu": {
        "bds-maj": (111.30, 825, 0.40),
        "bds-pga": (244.09, 1731, 0.47),
        "abc": (171.36, 1292, 0.44),
        "dc": (103.74, 743, 0.41),
    },
    "apex6": {
        "bds-maj": (94.85, 811, 0.25),
        "bds-pga": (106.40, 813, 0.30),
        "abc": (100.73, 733, 0.26),
        "dc": (96.04, 745, 0.31),
    },
    "vda": {
        "bds-maj": (71.26, 567, 0.24),
        "bds-pga": (114.24, 893, 0.20),
        "abc": (133.56, 1035, 0.20),
        "dc": (70.98, 564, 0.25),
    },
    "f51m": {
        "bds-maj": (13.23, 78, 0.15),
        "bds-pga": (13.86, 88, 0.19),
        "abc": (26.18, 199, 0.17),
        "dc": (17.85, 135, 0.22),
    },
    "misex3": {
        "bds-maj": (186.90, 1440, 0.30),
        "bds-pga": (236.25, 1825, 0.28),
        "abc": (225.12, 1753, 0.28),
        "dc": (185.01, 1424, 0.36),
    },
    "seq": {
        "bds-maj": (266.35, 2086, 0.33),
        "bds-pga": (541.17, 4167, 0.27),
        "abc": (488.32, 3678, 0.26),
        "dc": (304.15, 2325, 0.30),
    },
    "bigkey": {
        "bds-maj": (428.29, 3512, 0.24),
        "bds-pga": (528.22, 4121, 0.30),
        "abc": (713.79, 5692, 0.22),
        "dc": (434.49, 3526, 0.22),
    },
    "sqrt32": {
        "bds-maj": (205.22, 920, 3.22),
        "bds-pga": (236.81, 1029, 4.17),
        "abc": (226.31, 1058, 3.66),
        "dc": (211.40, 990, 3.44),
    },
    "wallace16": {
        "bds-maj": (291.89, 1455, 0.65),
        "bds-pga": (385.49, 1995, 0.88),
        "abc": (413.56, 2118, 0.77),
        "dc": (319.41, 1541, 0.69),
    },
    "cla64": {
        "bds-maj": (145.32, 1455, 0.65),
        "bds-pga": (170.17, 1160, 1.08),
        "abc": (181.44, 1126, 0.76),
        "dc": (161.07, 1114, 0.67),
    },
    "rev19": {
        "bds-maj": (1044.26, 5339, 3.09),
        "bds-pga": (1506.96, 7425, 4.56),
        "abc": (1545.67, 8175, 4.26),
        "dc": (1160.60, 5432, 3.14),
    },
    "div18": {
        "bds-maj": (702.03, 4255, 8.54),
        "bds-pga": (957.53, 6403, 10.24),
        "abc": (931.35, 6302, 9.52),
        "dc": (734.02, 4948, 9.22),
    },
    "mac16": {
        "bds-maj": (365.22, 1492, 0.67),
        "bds-pga": (449.33, 2150, 0.95),
        "abc": (491.12, 2560, 0.72),
        "dc": (383.67, 1431, 0.70),
    },
    "add4x16": {
        "bds-maj": (59.93, 171, 0.40),
        "bds-pga": (65.17, 221, 0.51),
        "abc": (86.18, 391, 0.50),
        "dc": (63.63, 201, 0.44),
    },
}

#: Headline averages the paper reports in the abstract / Section V.
PAPER_HEADLINES = {
    "table1_node_reduction": 0.291,
    "table1_maj_fraction": 0.098,
    "table1_runtime_overhead": 0.046,
    "table2_area_vs_abc": 0.288,
    "table2_area_vs_bds": 0.264,
    "table2_area_vs_dc": 0.060,
    "table2_delay_vs_abc": 0.128,
    "table2_delay_vs_bds": 0.209,
    "table2_delay_vs_dc": 0.078,
}
