"""Experiment harnesses regenerating the paper's tables and figures."""

from .figures import figure1, figure2, figure3
from .paper_data import PAPER_HEADLINES, PAPER_TABLE1, PAPER_TABLE2
from .table1 import Table1Entry, format_table1, run_table1, summarize_table1
from .table2 import Table2Entry, format_table2, run_table2, summarize_table2

__all__ = [
    "PAPER_HEADLINES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Table1Entry",
    "Table2Entry",
    "figure1",
    "figure2",
    "figure3",
    "format_table1",
    "format_table2",
    "run_table1",
    "run_table2",
    "summarize_table1",
    "summarize_table2",
]
