"""Table I regeneration: decomposition node counts, BDS-MAJ vs BDS-PGA.

For every benchmark the harness runs the *optimize prefix* of both BDD
pipelines (no mapping needed for Table I), collects the
AND/OR/XOR/XNOR/MAJ node counts of the decomposed network and the
runtime, and prints the table with the paper's published row next to
each measured row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..api import get_pipeline
from ..bdd.manager import combine_cache_stats
from ..benchgen import BENCHMARKS, build_benchmark
from ..flows import BdsFlowConfig
from ..network import check_equivalence
from .paper_data import PAPER_TABLE1

TOOLS = ("bds-maj", "bds-pga")


@dataclass
class Table1Entry:
    key: str
    display: str
    category: str
    counts: dict[str, dict[str, int]] = field(default_factory=dict)
    runtime: dict[str, float] = field(default_factory=dict)
    verified: dict[str, bool] = field(default_factory=dict)
    #: Per-tool BDD operation-cache counters (hits/misses/evictions/
    #: hit_rate) aggregated over the flow's supernode managers.
    cache: dict[str, dict[str, int | float]] = field(default_factory=dict)

    def total(self, tool: str) -> int:
        return sum(self.counts[tool].values())


def run_table1(
    keys: Iterable[str] | None = None,
    verify: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[Table1Entry]:
    """Run the Table I experiment; returns one entry per benchmark."""
    if keys is None:
        keys = list(BENCHMARKS)
    entries = []
    for key in keys:
        benchmark = BENCHMARKS[key]
        network = build_benchmark(key)
        entry = Table1Entry(key, benchmark.display, benchmark.category)
        for tool in TOOLS:
            config = BdsFlowConfig(enable_majority=(tool == "bds-maj"), verify=False)
            pipeline = get_pipeline(tool).optimize_prefix()
            ctx = pipeline.run_context(network, config)
            entry.runtime[tool] = ctx.optimize_seconds
            entry.counts[tool] = ctx.node_counts
            entry.cache[tool] = ctx.cache_stats
            if verify:
                entry.verified[tool] = bool(
                    check_equivalence(network, ctx.optimized).equivalent
                )
            if progress is not None:
                progress(
                    f"{benchmark.display:18s} {tool:8s} "
                    f"total={entry.total(tool):5d} "
                    f"({entry.runtime[tool]:.1f}s)"
                )
        entries.append(entry)
    return entries


def summarize_table1(entries: list[Table1Entry]) -> dict[str, float]:
    """The paper's headline aggregates over the measured entries."""
    maj_totals = [e.total("bds-maj") for e in entries]
    pga_totals = [e.total("bds-pga") for e in entries]
    maj_nodes = [e.counts["bds-maj"]["maj"] for e in entries]
    mean_maj = sum(maj_totals) / len(maj_totals)
    mean_pga = sum(pga_totals) / len(pga_totals)
    runtime_maj = sum(e.runtime["bds-maj"] for e in entries)
    runtime_pga = sum(e.runtime["bds-pga"] for e in entries)
    cache = combine_cache_stats(
        e.cache[t] for e in entries for t in TOOLS if t in e.cache
    )
    return {
        "mean_total_bds_maj": mean_maj,
        "mean_total_bds_pga": mean_pga,
        "node_reduction": 1.0 - mean_maj / mean_pga if mean_pga else 0.0,
        "maj_fraction": sum(maj_nodes) / sum(maj_totals) if sum(maj_totals) else 0.0,
        "runtime_bds_maj": runtime_maj,
        "runtime_bds_pga": runtime_pga,
        "runtime_overhead": runtime_maj / runtime_pga - 1.0 if runtime_pga else 0.0,
        "wins": sum(1 for m, p in zip(maj_totals, pga_totals) if m < p),
        "benchmarks": len(entries),
        "bdd_cache_hit_rate": cache["hit_rate"],
    }


def format_table1(entries: list[Table1Entry], include_paper: bool = True) -> str:
    """Render the table in the paper's column layout."""
    lines = []
    header = (
        f"{'Benchmark':18s} {'tool':8s} "
        f"{'AND':>5s} {'OR':>5s} {'XOR':>5s} {'XNOR':>5s} {'MAJ':>5s} "
        f"{'Total':>6s} {'Sec':>6s}"
    )
    lines.append("TABLE I: Decomposition Results, BDS-MAJ vs BDS-PGA")
    lines.append(header)
    lines.append("-" * len(header))
    current_category = None
    for entry in entries:
        if entry.category != current_category:
            current_category = entry.category
            title = "MCNC Benchmarks" if current_category == "mcnc" else "HDL Benchmarks"
            lines.append(f"-- {title} --")
        for tool in TOOLS:
            counts = entry.counts[tool]
            lines.append(
                f"{entry.display:18s} {tool:8s} "
                f"{counts['and']:5d} {counts['or']:5d} {counts['xor']:5d} "
                f"{counts['xnor']:5d} {counts['maj']:5d} "
                f"{entry.total(tool):6d} {entry.runtime[tool]:6.1f}"
            )
            if include_paper and entry.key in PAPER_TABLE1:
                paper = PAPER_TABLE1[entry.key][tool]
                lines.append(
                    f"{'  (paper)':18s} {tool:8s} "
                    f"{paper.and_:5d} {paper.or_:5d} {paper.xor:5d} "
                    f"{paper.xnor:5d} {paper.maj:5d} "
                    f"{paper.total:6d} {paper.runtime:6.1f}"
                )
    summary = summarize_table1(entries)
    lines.append("-" * len(header))
    lines.append(
        f"Average node reduction vs BDS-PGA: {summary['node_reduction'] * 100:.1f}% "
        f"(paper: 29.1%)"
    )
    lines.append(
        f"MAJ share of BDS-MAJ nodes: {summary['maj_fraction'] * 100:.1f}% (paper: 9.8%)"
    )
    lines.append(
        f"BDS-MAJ wins on {summary['wins']}/{summary['benchmarks']} benchmarks"
    )
    lines.append(
        f"Runtime: BDS-MAJ {summary['runtime_bds_maj']:.1f}s, "
        f"BDS-PGA {summary['runtime_bds_pga']:.1f}s "
        f"({summary['runtime_overhead'] * 100:+.1f}%; paper: +4.6%)"
    )
    lines.append(
        f"BDD op-cache hit rate: {summary['bdd_cache_hit_rate'] * 100:.1f}% "
        f"(unified ite/cofactor/quantify cache)"
    )
    return "\n".join(lines)
