"""Command-line interface: ``bdsmaj <command>``.

Commands mirror the paper's experiments:

* ``table1`` — decomposition node counts (BDS-MAJ vs BDS-PGA);
* ``table2`` — mapped area/gates/delay for all four flows;
* ``fig1`` / ``fig2`` / ``fig3`` — figure reproductions;
* ``synth`` — run one flow on one benchmark or BLIF file;
* ``batch`` — parallel batch synthesis over many benchmarks and/or
  globs of BLIF files (``--files``) with a deterministic JSON/CSV
  report (byte-identical for any worker count);
* ``serve`` — the async HTTP synthesis service (:mod:`repro.serve`):
  submit/status/result/cancel endpoints plus streamed progress,
  optionally durable (``--journal``) and authenticated
  (``--auth-token``);
* ``shard`` — a consistent-hash dispatcher spawning and supervising N
  ``serve`` backends (:mod:`repro.serve.shard`);
* ``lint`` — project-contract static analysis (:mod:`repro.analysis`):
  determinism, async-safety, resource-lifecycle and engine-invariant
  rules with justified inline suppressions;
* ``list`` — available benchmarks.

Circuit arguments resolve through the pluggable input layer of
:mod:`repro.api`: registry keys, BLIF file paths and glob patterns are
all accepted where a circuit is expected.
"""

from __future__ import annotations

import argparse
import sys

from ..api import (
    BlifGlobSource,
    InputSourceError,
    get_pipeline,
    resolve_source,
)
from ..bdd.manager import CACHE_POLICIES, DEFAULT_CACHE_CAPACITY
from ..benchgen import BENCHMARKS
from ..benchgen.registry import benchmark_keys
from ..flows import BATCH_FLOWS, FLOWS, REORDER_POLICIES, BatchConfig, run_batch
from ..network import to_blif
from .figures import figure1, figure2, figure3
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2


def _positive_int(text: str) -> int:
    """argparse type for options that must be >= 1 (``--workers``,
    ``--cache-capacity``, ``--concurrency``): a clean usage error
    instead of a traceback from deep inside the batch layer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for options where 0 is meaningful (``--event-cap``
    0 = unlimited, ``--max-finished-jobs`` 0 = retain none)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _port(text: str) -> int:
    """argparse type for TCP ports (0 = ephemeral)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(f"port must be in 0..65535, got {value}")
    return value


def _parse_keys(text: str | None) -> list[str] | None:
    if text is None:
        return None
    keys = [key.strip() for key in text.split(",") if key.strip()]
    unknown = [key for key in keys if key not in BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return keys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bdsmaj",
        description="BDS-MAJ reproduction (Amaru et al., DAC 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("--benchmarks", help="comma-separated registry keys")
    t1.add_argument("--verify", action="store_true", help="equivalence-check outputs")
    t1.add_argument("--no-paper", action="store_true", help="omit paper rows")

    t2 = sub.add_parser("table2", help="regenerate Table II")
    t2.add_argument("--benchmarks", help="comma-separated registry keys")
    t2.add_argument("--quick", action="store_true", help="short ABC script")
    t2.add_argument("--no-verify", action="store_true")
    t2.add_argument("--no-paper", action="store_true")

    sub.add_parser("fig1", help="Figure 1: m-dominator BDD (dot output)")
    sub.add_parser("fig2", help="Figure 2: balancing walkthrough")
    f3 = sub.add_parser("fig3", help="Figure 3: flow stage trace")
    f3.add_argument("--benchmark", default="alu2")

    synth = sub.add_parser("synth", help="run one flow on one circuit")
    synth.add_argument("circuit", help="benchmark key or path to a BLIF file")
    synth.add_argument("--flow", default="bds-maj", choices=sorted(FLOWS))
    synth.add_argument("--blif-out", help="write the optimized network as BLIF")

    batch = sub.add_parser(
        "batch", help="parallel batch synthesis over registry circuits and BLIF files"
    )
    batch.add_argument("--benchmarks", help="comma-separated registry keys (default: all)")
    batch.add_argument(
        "--files",
        action="append",
        metavar="GLOB",
        help="glob of BLIF files to synthesize (repeatable, combinable "
        "with --benchmarks); an empty match is an error",
    )
    batch.add_argument(
        "--category", choices=["mcnc", "hdl"], help="restrict to one registry category"
    )
    batch.add_argument("--flow", default="bds-maj", choices=sorted(BATCH_FLOWS))
    batch.add_argument(
        "--workers", type=_positive_int, default=1, help="worker processes (>= 1)"
    )
    batch.add_argument("--verify", action="store_true", help="equivalence-check outputs")
    batch.add_argument(
        "--circuit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-circuit synthesis deadline; a circuit past it is "
        "retried up to --max-retries times, then reported as a "
        "deterministic error row (default: no deadline)",
    )
    batch.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        metavar="N",
        help="retries per circuit after a timeout or worker death "
        "before the error row is final (default: 2)",
    )
    batch.add_argument(
        "--cache-policy",
        choices=list(CACHE_POLICIES),
        default="fifo",
        help="BDD operation-cache eviction policy (fifo keeps the "
        "published counters; lru and 2random trade determinism-safe "
        "recency tracking for higher hit rates under pressure)",
    )
    batch.add_argument(
        "--cache-capacity",
        type=_positive_int,
        default=DEFAULT_CACHE_CAPACITY,
        help="BDD operation-cache entries per manager (>= 1; the "
        "default keeps the published counters)",
    )
    batch.add_argument(
        "--reorder",
        choices=list(REORDER_POLICIES),
        default="once",
        help="BDS variable-reordering policy: once (published single "
        "pass, the default), converge (sift to a fixpoint), dynamic "
        "(growth-triggered sifting during BDD construction), none",
    )
    batch.add_argument("--format", choices=["json", "csv"], default="json")
    batch.add_argument("--output", help="write the report to a file (default: stdout)")
    batch.add_argument(
        "--timings",
        action="store_true",
        help="include wall-clock fields (report is no longer byte-reproducible)",
    )

    serve = sub.add_parser(
        "serve", help="async HTTP synthesis service (submit/status/result/cancel)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_port, default=8347)
    serve.add_argument(
        "--concurrency",
        type=_positive_int,
        default=2,
        help="jobs synthesized concurrently (>= 1); each job may also "
        "request its own worker processes",
    )
    serve.add_argument(
        "--event-cap",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="wire events retained per finished job (default: 256; "
        "0 = unlimited; the /jobs/<id>/events stream reports any "
        "truncation explicitly)",
    )
    serve.add_argument(
        "--max-finished-jobs",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="finished jobs retained before the oldest expire "
        "(default: unlimited; 0 = drop every finished job on the "
        "next submission)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close connections idle for this long (default: 60; "
        "0 = never time out)",
    )
    serve.add_argument(
        "--result-cache",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="finished reports cached by content hash, so identical "
        "resubmissions answer without resynthesis (default: 64; "
        "0 = disable)",
    )
    serve.add_argument(
        "--arena",
        default="auto",
        metavar="CIRCUITS",
        help="registry circuits snapshotted into the shared-memory BDD "
        "arena workers verify against: 'auto' (default small MCNC "
        "set), 'refresh' (default set, republished as jobs finish), "
        "'off', or a comma-separated list",
    )
    serve.add_argument(
        "--cold-pools",
        action="store_true",
        help="spawn a fresh worker pool per batch instead of keeping "
        "warm pools parked between jobs",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append-only job journal; on restart finished jobs replay "
        "byte-identically (rehydrating the result cache) and "
        "interrupted jobs re-run under their original ids",
    )
    serve.add_argument(
        "--journal-compact-bytes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="rewrite the journal once it grows past N bytes, keeping "
        "only live records (default: 1 MiB)",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="refuse new submissions past this queued backlog with "
        "429 + Retry-After (default: unlimited; cache hits are exempt)",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every endpoint "
        "except /healthz (default: $BDSMAJ_AUTH_TOKEN; unset = no auth)",
    )
    serve.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        metavar="N",
        help="times journal replay may (re)start one job before "
        "quarantining it as a poison job (default: 3)",
    )

    shard = sub.add_parser(
        "shard",
        help="consistent-hash dispatcher over N supervised serve backends",
    )
    shard.add_argument("--host", default="127.0.0.1")
    shard.add_argument("--port", type=_port, default=8348)
    shard.add_argument(
        "--backends",
        type=_positive_int,
        default=3,
        help="serve subprocesses to spawn and route across (>= 1)",
    )
    shard.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="directory for per-backend job journals (backend-<i>.journal); "
        "respawned backends replay theirs, so crashes lose nothing",
    )
    shard.add_argument(
        "--concurrency",
        type=_positive_int,
        default=2,
        help="jobs synthesized concurrently per backend",
    )
    shard.add_argument(
        "--result-cache",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="per-backend result cache size (default: 64; 0 = disable); "
        "content routing keeps each key on one shard's cache",
    )
    shard.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="per-backend queued-job limit (429 + Retry-After past it)",
    )
    shard.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close dispatcher connections idle for this long "
        "(default: 60; 0 = never time out)",
    )
    shard.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require bearer auth at the dispatcher edge "
        "(default: $BDSMAJ_AUTH_TOKEN; backends trust loopback)",
    )

    sub.add_parser(
        "lint",
        help="run bdslint project-contract static analysis "
        "(see `bdsmaj lint --help`)",
        add_help=False,
    )

    sub.add_parser("list", help="list available benchmarks")

    # ``lint`` owns its whole argument tail (argparse.REMAINDER cannot
    # pass through leading options), so delegate before parsing.
    raw_args = sys.argv[1:] if argv is None else argv
    if raw_args[:1] == ["lint"]:
        from ..analysis.cli import run as run_lint

        return run_lint(raw_args[1:], prog="bdsmaj lint")

    args = parser.parse_args(argv)

    if args.command == "table1":
        entries = run_table1(
            _parse_keys(args.benchmarks), verify=args.verify, progress=_progress
        )
        print(format_table1(entries, include_paper=not args.no_paper))
    elif args.command == "table2":
        entries = run_table2(
            _parse_keys(args.benchmarks),
            quick=args.quick,
            verify=not args.no_verify,
            progress=_progress,
        )
        print(format_table2(entries, include_paper=not args.no_paper))
    elif args.command == "fig1":
        result = figure1()
        print(result.dot)
        print(
            f"// non-trivial m-dominators: {result.num_candidates} "
            f"(Fa = {result.dominator_function})",
        )
    elif args.command == "fig2":
        for step in figure2().steps:
            print(step)
    elif args.command == "fig3":
        result = figure3(args.benchmark)
        print(f"BDS-MAJ flow trace on {result.benchmark}:")
        for line in result.lines:
            print(line)
    elif args.command == "synth":
        try:
            items = resolve_source(args.circuit).items()
        except InputSourceError as exc:
            raise SystemExit(str(exc)) from None
        if len(items) != 1:
            raise SystemExit(
                f"synth expects exactly one circuit, but {args.circuit!r} "
                f"matched {len(items)} files (use `batch --files` for suites)"
            )
        network = items[0].load()
        result = get_pipeline(args.flow).run(network)
        area, gates, delay = result.table2_row()
        print(f"flow      : {result.flow}")
        print(f"benchmark : {result.benchmark}")
        if result.node_counts:
            print(f"nodes     : {result.node_counts} (total {result.total_nodes})")
        print(f"area      : {area} um^2")
        print(f"gates     : {gates}")
        print(f"delay     : {delay} ns")
        print(f"optimized : {result.optimize_seconds:.2f} s")
        if result.equivalence is not None:
            print(f"verified  : {result.equivalence.method}")
        if args.blif_out:
            with open(args.blif_out, "w") as stream:
                stream.write(to_blif(result.optimized))
            print(f"wrote     : {args.blif_out}")
    elif args.command == "batch":
        keys = _parse_keys(args.benchmarks)
        if keys is None:
            # No explicit keys: a purely file-driven batch runs only the
            # globbed files, but an explicit --category is a registry
            # request and is honored either way.
            if args.files and args.category is None:
                keys = []
            else:
                keys = benchmark_keys(args.category)
        elif args.category is not None:
            category_keys = set(benchmark_keys(args.category))
            dropped = [key for key in keys if key not in category_keys]
            keys = [key for key in keys if key in category_keys]
            if dropped:
                _progress(
                    f"dropping benchmarks outside --category {args.category}: "
                    + ", ".join(dropped)
                )
            if not keys and not args.files:
                raise SystemExit(
                    f"no requested benchmarks in category {args.category!r}"
                )
        # run_batch normalizes plain registry keys itself; only the file
        # items need resolving here.
        items: list = list(keys)
        for pattern in args.files or ():
            try:
                items.extend(BlifGlobSource(pattern).items())
            except InputSourceError as exc:
                raise SystemExit(f"--files: {exc}") from None
        config = BatchConfig(
            flow=args.flow,
            workers=args.workers,
            verify=args.verify,
            cache_policy=args.cache_policy,
            cache_capacity=args.cache_capacity,
            reorder=args.reorder,
            circuit_timeout=args.circuit_timeout,
            max_retries=args.max_retries,
        )
        report = run_batch(items, config, progress=_progress)
        if args.format == "csv":
            text = report.to_csv(include_timing=args.timings)
        else:
            text = report.to_json(include_timing=args.timings)
        if args.output:
            with open(args.output, "w") as stream:
                stream.write(text)
            summary = report.summary()
            _progress(
                f"wrote {args.output}: {summary['ok']}/{summary['circuits']} ok, "
                f"cache hit rate {summary['cache_hit_rate'] * 100:.1f}%, "
                f"{report.elapsed_seconds:.1f}s elapsed "
                f"({report.total_seconds:.1f}s summed synthesis)"
            )
        else:
            sys.stdout.write(text)
        if report.failed_circuits:
            return 1
    elif args.command == "serve":
        from ..serve import (
            DEFAULT_ARENA_CIRCUITS,
            DEFAULT_EVENT_CAP,
            DEFAULT_IDLE_TIMEOUT,
            DEFAULT_RESULT_CACHE_SIZE,
            run_server,
        )

        if args.event_cap is None:
            event_cap = DEFAULT_EVENT_CAP
        else:
            event_cap = args.event_cap or None  # 0 = unlimited
        if args.idle_timeout is None:
            idle_timeout = DEFAULT_IDLE_TIMEOUT
        else:
            idle_timeout = args.idle_timeout or None  # 0 = no timeout
        if args.result_cache is None:
            result_cache_size = DEFAULT_RESULT_CACHE_SIZE
        else:
            result_cache_size = args.result_cache or None  # 0 = off
        arena_spec = args.arena.strip().lower()
        arena_refresh = False
        if arena_spec == "off":
            arena_circuits = None
        elif arena_spec == "auto":
            arena_circuits = DEFAULT_ARENA_CIRCUITS
        elif arena_spec == "refresh":
            arena_circuits = DEFAULT_ARENA_CIRCUITS
            arena_refresh = True
        else:
            arena_circuits = tuple(
                name.strip() for name in args.arena.split(",") if name.strip()
            )
        extra_serve_kwargs = {}
        if args.journal_compact_bytes is not None:
            extra_serve_kwargs["journal_compact_bytes"] = args.journal_compact_bytes
        return run_server(
            host=args.host,
            port=args.port,
            concurrency=args.concurrency,
            echo=_progress,
            event_cap=event_cap,
            max_finished_jobs=args.max_finished_jobs,
            idle_timeout=idle_timeout,
            result_cache_size=result_cache_size,
            warm_pools=not args.cold_pools,
            arena_circuits=arena_circuits,
            arena_refresh=arena_refresh,
            journal_path=args.journal,
            max_pending=args.max_pending,
            auth_token=args.auth_token,
            max_attempts=args.max_attempts,
            **extra_serve_kwargs,
        )
    elif args.command == "shard":
        from ..serve import DEFAULT_IDLE_TIMEOUT, run_shard

        if args.idle_timeout is None:
            idle_timeout = DEFAULT_IDLE_TIMEOUT
        else:
            idle_timeout = args.idle_timeout or None  # 0 = no timeout
        return run_shard(
            host=args.host,
            port=args.port,
            backends=args.backends,
            journal_dir=args.journal_dir,
            backend_concurrency=args.concurrency,
            result_cache_size=args.result_cache,
            max_pending=args.max_pending,
            idle_timeout=idle_timeout,
            auth_token=args.auth_token,
            echo=_progress,
        )
    elif args.command == "list":
        for key, benchmark in BENCHMARKS.items():
            print(f"{key:12s} {benchmark.display:18s} [{benchmark.category}] {benchmark.description}")
    return 0


def _progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
