"""Table II regeneration: mapped area / gate count / delay for the four
synthesis flows on the 22 nm library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..api import get_pipeline
from ..benchgen import BENCHMARKS, build_benchmark
from ..flows import AbcFlowConfig, BdsFlowConfig, DcFlowConfig
from .paper_data import PAPER_TABLE2

FLOW_ORDER = ("bds-maj", "bds-pga", "abc", "dc")


@dataclass
class Table2Entry:
    key: str
    display: str
    category: str
    rows: dict[str, tuple[float, int, float]] = field(default_factory=dict)
    runtime: dict[str, float] = field(default_factory=dict)


def _flow_config(flow: str, quick: bool, verify: bool):
    if flow in ("bds-maj", "bds-pga"):
        return BdsFlowConfig(enable_majority=(flow == "bds-maj"), verify=verify)
    if flow == "abc":
        return AbcFlowConfig(quick=quick, verify=verify)
    return DcFlowConfig(verify=verify)


def run_table2(
    keys: Iterable[str] | None = None,
    quick: bool = False,
    verify: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[Table2Entry]:
    """Run all four flows on the selected benchmarks."""
    if keys is None:
        keys = list(BENCHMARKS)
    entries = []
    for key in keys:
        benchmark = BENCHMARKS[key]
        network = build_benchmark(key)
        entry = Table2Entry(key, benchmark.display, benchmark.category)
        for flow_name in FLOW_ORDER:
            config = _flow_config(flow_name, quick, verify)
            result = get_pipeline(flow_name).run(network, config)
            entry.rows[flow_name] = result.table2_row()
            entry.runtime[flow_name] = result.optimize_seconds
            if progress is not None:
                area, gates, delay = entry.rows[flow_name]
                progress(
                    f"{benchmark.display:18s} {flow_name:8s} "
                    f"A={area:8.2f} GC={gates:5d} D={delay:6.3f} "
                    f"({result.optimize_seconds:.1f}s)"
                )
        entries.append(entry)
    return entries


def summarize_table2(entries: list[Table2Entry]) -> dict[str, float]:
    """Average metrics and the paper's headline percentage deltas."""
    result: dict[str, float] = {}
    means: dict[str, tuple[float, float, float]] = {}
    for flow in FLOW_ORDER:
        areas = [entry.rows[flow][0] for entry in entries]
        gates = [entry.rows[flow][1] for entry in entries]
        delays = [entry.rows[flow][2] for entry in entries]
        means[flow] = (
            sum(areas) / len(areas),
            sum(gates) / len(gates),
            sum(delays) / len(delays),
        )
        result[f"mean_area_{flow}"] = means[flow][0]
        result[f"mean_gates_{flow}"] = means[flow][1]
        result[f"mean_delay_{flow}"] = means[flow][2]
    for reference in ("bds-pga", "abc", "dc"):
        result[f"area_vs_{reference}"] = 1.0 - means["bds-maj"][0] / means[reference][0]
        result[f"delay_vs_{reference}"] = 1.0 - means["bds-maj"][2] / means[reference][2]
    return result


def format_table2(entries: list[Table2Entry], include_paper: bool = True) -> str:
    lines = []
    header = f"{'Benchmark':18s} " + " | ".join(
        f"{flow:>24s}" for flow in FLOW_ORDER
    )
    sub = f"{'':18s} " + " | ".join(
        f"{'A(um2)':>9s}{'GC':>7s}{'D(ns)':>8s}" for _ in FLOW_ORDER
    )
    lines.append("TABLE II: Logic Synthesis, CMOS 22nm Technology Node")
    lines.append(header)
    lines.append(sub)
    lines.append("-" * len(sub))
    current_category = None
    for entry in entries:
        if entry.category != current_category:
            current_category = entry.category
            title = "MCNC Benchmarks" if current_category == "mcnc" else "HDL Benchmarks"
            lines.append(f"-- {title} --")
        cells = []
        for flow in FLOW_ORDER:
            area, gates, delay = entry.rows[flow]
            cells.append(f"{area:9.2f}{gates:7d}{delay:8.3f}")
        lines.append(f"{entry.display:18s} " + " | ".join(cells))
        if include_paper and entry.key in PAPER_TABLE2:
            cells = []
            for flow in FLOW_ORDER:
                area, gates, delay = PAPER_TABLE2[entry.key][flow]
                cells.append(f"{area:9.2f}{gates:7d}{delay:8.3f}")
            lines.append(f"{'  (paper)':18s} " + " | ".join(cells))
    summary = summarize_table2(entries)
    lines.append("-" * len(sub))
    lines.append(
        "Average: "
        + " | ".join(
            f"{flow}: A={summary[f'mean_area_{flow}']:.2f} "
            f"GC={summary[f'mean_gates_{flow}']:.0f} "
            f"D={summary[f'mean_delay_{flow}']:.3f}"
            for flow in FLOW_ORDER
        )
    )
    lines.append(
        "BDS-MAJ area delta: "
        f"{-summary['area_vs_abc'] * 100:+.1f}% vs ABC (paper -28.8%), "
        f"{-summary['area_vs_bds-pga'] * 100:+.1f}% vs BDS (paper -26.4%), "
        f"{-summary['area_vs_dc'] * 100:+.1f}% vs DC (paper -6.0%)"
    )
    lines.append(
        "BDS-MAJ delay delta: "
        f"{-summary['delay_vs_abc'] * 100:+.1f}% vs ABC (paper -12.8%), "
        f"{-summary['delay_vs_bds-pga'] * 100:+.1f}% vs BDS (paper -20.9%), "
        f"{-summary['delay_vs_dc'] * 100:+.1f}% vs DC (paper -7.8%)"
    )
    return "\n".join(lines)
