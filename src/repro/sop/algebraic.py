"""Algebraic (kernel-based) factoring of SOP expressions.

This is the MIS/SIS-era machinery ([3], [5] in the paper) behind the
Design-Compiler-like baseline flow: expressions are sets of cubes over
*literals* (signal, phase); kernels and co-kernels guide a recursive
good-factor decomposition that is finally emitted as 2-input AND/OR
gates (plus inverters).

Algebraic conventions: a cube is a frozenset of literals; an expression
a frozenset of cubes; division is *weak* division (no Boolean
simplification), keeping the algorithms polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

#: A literal is (signal name, phase); a cube a frozenset of literals.
Literal = tuple[str, bool]
Cube = frozenset
Expression = frozenset


def expression_from_cover(cover: Iterable[str], fanins: list[str]) -> Expression:
    """Convert a positional cover into an algebraic expression."""
    cubes = []
    for row in cover:
        literals = []
        for ch, name in zip(row, fanins):
            if ch == "1":
                literals.append((name, True))
            elif ch == "0":
                literals.append((name, False))
        cubes.append(Cube(literals))
    return Expression(cubes)


def literal_counts(expr: Expression) -> dict[Literal, int]:
    counts: dict[Literal, int] = {}
    for cube in expr:
        for literal in cube:
            counts[literal] = counts.get(literal, 0) + 1
    return counts


def common_cube(cubes: Iterable[Cube]) -> Cube:
    iterator = iter(cubes)
    try:
        result = set(next(iterator))
    except StopIteration:
        return Cube()
    for cube in iterator:
        result &= cube
    return Cube(result)


def divide_by_cube(expr: Expression, cube: Cube) -> Expression:
    """Quotient of weak division by a single cube."""
    return Expression(c - cube for c in expr if cube <= c)


def weak_division(expr: Expression, divisor: Expression) -> tuple[Expression, Expression]:
    """Weak division: ``expr = divisor * quotient + remainder``.

    The quotient is the intersection over divisor cubes d of
    ``expr / d``; the remainder is whatever is not reconstructed.
    """
    if not divisor:
        return Expression(), expr
    quotient: set[Cube] | None = None
    for d in divisor:
        partial = {c - d for c in expr if d <= c}
        quotient = partial if quotient is None else quotient & partial
        if not quotient:
            break
    quotient = quotient or set()
    product = {d | q for d in divisor for q in quotient}
    remainder = Expression(c for c in expr if c not in product)
    return Expression(quotient), remainder


def is_cube_free(expr: Expression) -> bool:
    """No literal common to every cube."""
    if not expr:
        return True
    return not common_cube(expr)


def make_cube_free(expr: Expression) -> Expression:
    common = common_cube(expr)
    if not common:
        return expr
    return Expression(c - common for c in expr)


def kernels(expr: Expression) -> list[tuple[Cube, Expression]]:
    """All (co-kernel, kernel) pairs of ``expr`` (Brayton/McMullen
    recursive enumeration with literal-order pruning)."""
    counts = literal_counts(expr)
    literals = sorted(
        (l for l, n in counts.items() if n >= 2), key=lambda l: (l[0], l[1])
    )
    result: list[tuple[Cube, Expression]] = []
    seen: set[Expression] = set()

    def recurse(current: Expression, co_kernel: Cube, start: int) -> None:
        for index in range(start, len(literals)):
            literal = literals[index]
            containing = [c for c in current if literal in c]
            if len(containing) < 2:
                continue
            common = common_cube(containing)
            sub = Expression(c - common for c in containing)
            if any(
                literals[earlier] in common
                for earlier in range(index)
            ):
                continue  # already enumerated from an earlier literal
            if sub not in seen:
                seen.add(sub)
                result.append((Cube(co_kernel | common), sub))
                recurse(sub, Cube(co_kernel | common), index + 1)

    if is_cube_free(expr) and len(expr) > 1:
        result.append((Cube(), expr))
    recurse(expr, Cube(), 0)
    return result


def best_kernel(expr: Expression) -> tuple[Cube, Expression] | None:
    """The kernel promising the largest literal saving when extracted.

    The trivial self-kernel (empty co-kernel, kernel == expr) is
    excluded: dividing an expression by itself makes no factoring
    progress.
    """
    best = None
    best_value = 0
    for co_kernel, kernel in kernels(expr):
        if len(kernel) < 2:
            continue
        if not co_kernel and kernel == expr:
            continue
        # Classic value heuristic: a kernel with n cubes extracted
        # against a co-kernel of c literals saves ~ (n-1)*max(|c|,1).
        value = (len(kernel) - 1) * max(len(co_kernel), 1)
        if value > best_value:
            best_value = value
            best = (co_kernel, kernel)
    return best


def _divisible(cube: Cube, divisor: Cube) -> bool:
    return divisor <= cube


# ----------------------------------------------------------------------
# Good factoring into gates
# ----------------------------------------------------------------------
@dataclass
class GateEmitter:
    """Callback bundle used by :func:`factor_expression` to emit gates.

    ``and2(a, b)``, ``or2(a, b)`` and ``literal(name, phase)`` return
    signal handles (any hashable the caller likes).
    """

    literal: Callable[[str, bool], object]
    and2: Callable[[object, object], object]
    or2: Callable[[object, object], object]
    const: Callable[[bool], object]


def factor_expression(expr: Expression, emit: GateEmitter) -> object:
    """Recursive good-factoring of ``expr`` into 2-input gates."""
    if not expr:
        return emit.const(False)
    if any(len(cube) == 0 for cube in expr):
        return emit.const(True)
    if len(expr) == 1:
        return _emit_cube(next(iter(expr)), emit)

    # Try the best kernel as divisor: expr = divisor*quotient + rest.
    choice = best_kernel(expr)
    if choice is not None:
        co_kernel, kernel = choice
        quotient, remainder = weak_division(expr, kernel)
        if quotient and sum(len(c) for c in quotient) > 0 and kernel != expr:
            left = factor_expression(kernel, emit)
            right = factor_expression(quotient, emit)
            product = emit.and2(left, right)
            if remainder:
                return emit.or2(product, factor_expression(remainder, emit))
            return product

    # Literal factoring fallback: pull out the most frequent literal.
    counts = literal_counts(expr)
    literal, count = max(counts.items(), key=lambda item: item[1])
    if count >= 2:
        divisor = Expression([Cube([literal])])
        quotient, remainder = weak_division(expr, divisor)
        product = emit.and2(
            emit.literal(*literal), factor_expression(quotient, emit)
        )
        if remainder:
            return emit.or2(product, factor_expression(remainder, emit))
        return product

    # No sharing at all: balanced OR of cube gates.
    cubes = [_emit_cube(cube, emit) for cube in sorted(expr, key=sorted)]
    while len(cubes) > 1:
        cubes = [
            emit.or2(cubes[i], cubes[i + 1]) for i in range(0, len(cubes) - 1, 2)
        ] + ([cubes[-1]] if len(cubes) % 2 else [])
    return cubes[0]


def _emit_cube(cube: Cube, emit: GateEmitter) -> object:
    literals = [emit.literal(name, phase) for name, phase in sorted(cube)]
    if not literals:
        return emit.const(True)
    while len(literals) > 1:
        literals = [
            emit.and2(literals[i], literals[i + 1])
            for i in range(0, len(literals) - 1, 2)
        ] + ([literals[-1]] if len(literals) % 2 else [])
    return literals[0]
