"""Positional-cube covers and a light two-level minimizer.

Covers use the BLIF convention shared with :mod:`repro.network`: a row
is a string over ``0 1 -`` constraining the fanins positionally; the
cover is the OR of its rows.

The minimizer (:func:`simplify_cover`) is an espresso-lite: iterated
single-cube containment, distance-1 merging and an exact irredundancy
pass built on a recursive tautology check.  It is not the full
espresso-II expand/reduce loop, but it removes the redundancy the
DC-like flow's collapsing step introduces, which is what the baseline
needs (see DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _row_contains(general: str, specific: str) -> bool:
    """True if cube ``general`` contains cube ``specific`` (every
    minterm of specific is in general)."""
    for g, s in zip(general, specific):
        if g != "-" and g != s:
            return False
    return True


def _merge_distance_one(left: str, right: str) -> str | None:
    """Combine two cubes differing in exactly one opposing position."""
    difference = -1
    for i, (l, r) in enumerate(zip(left, right)):
        if l == r:
            continue
        if l == "-" or r == "-":
            return None
        if difference >= 0:
            return None
        difference = i
    if difference < 0:
        return None  # identical
    return left[:difference] + "-" + left[difference + 1 :]


def _cofactor_cover(cover: Sequence[str], position: int, value: str) -> list[str]:
    """Shannon cofactor of a cover w.r.t. one position."""
    result = []
    for row in cover:
        ch = row[position]
        if ch == "-" or ch == value:
            result.append(row[:position] + "-" + row[position + 1 :])
    return result


def cover_is_tautology(cover: Sequence[str]) -> bool:
    """Recursive tautology check (unate reduction + binate splitting)."""
    if not cover:
        return False
    if any(all(ch == "-" for ch in row) for row in cover):
        return True
    width = len(cover[0])
    # Pick the most binate position to split on.
    best_position = -1
    best_score = -1
    for position in range(width):
        ones = sum(1 for row in cover if row[position] == "1")
        zeros = sum(1 for row in cover if row[position] == "0")
        if ones and zeros:
            score = min(ones, zeros)
            if score > best_score:
                best_score = score
                best_position = position
    if best_position < 0:
        # Unate cover: tautology iff it has an all-don't-care row
        # (already checked above).
        return False
    return cover_is_tautology(
        _cofactor_cover(cover, best_position, "1")
    ) and cover_is_tautology(_cofactor_cover(cover, best_position, "0"))


def cube_covered(cube: str, cover: Sequence[str]) -> bool:
    """True if ``cube`` is contained in the union of ``cover``."""
    cofactored = []
    for row in cover:
        merged = []
        compatible = True
        for c, r in zip(cube, row):
            if c == "-":
                merged.append(r)
            elif r == "-" or r == c:
                merged.append("-")
            else:
                compatible = False
                break
        if compatible:
            cofactored.append("".join(merged))
    return cover_is_tautology(cofactored)


def simplify_cover(cover: Iterable[str]) -> tuple[str, ...]:
    """Espresso-lite minimization of an ON-set cover."""
    rows = list(dict.fromkeys(cover))  # dedupe, keep order
    if not rows:
        return ()
    if any(all(ch == "-" for ch in row) for row in rows):
        return ("-" * len(rows[0]),)

    changed = True
    while changed:
        changed = False
        # Single-cube containment.
        kept: list[str] = []
        for row in rows:
            if any(other != row and _row_contains(other, row) for other in rows):
                changed = True
                continue
            kept.append(row)
        rows = list(dict.fromkeys(kept))
        # Distance-1 merging.
        merged_any = True
        while merged_any:
            merged_any = False
            for i in range(len(rows)):
                for j in range(i + 1, len(rows)):
                    merged = _merge_distance_one(rows[i], rows[j])
                    if merged is not None:
                        rows = [r for k, r in enumerate(rows) if k not in (i, j)]
                        rows.append(merged)
                        merged_any = True
                        changed = True
                        break
                if merged_any:
                    break

    # Irredundancy: drop cubes covered by the rest.
    index = 0
    while index < len(rows):
        candidate = rows[index]
        rest = rows[:index] + rows[index + 1 :]
        if rest and cube_covered(candidate, rest):
            rows = rest
        else:
            index += 1
    return tuple(rows)


def count_literals(cover: Iterable[str]) -> int:
    return sum(1 for row in cover for ch in row if ch != "-")
