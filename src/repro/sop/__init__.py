"""Two-level covers and algebraic factoring (the MIS/SIS substrate
behind the Design-Compiler-like baseline flow)."""

from .algebraic import (
    Cube,
    Expression,
    GateEmitter,
    best_kernel,
    common_cube,
    divide_by_cube,
    expression_from_cover,
    factor_expression,
    is_cube_free,
    kernels,
    literal_counts,
    make_cube_free,
    weak_division,
)
from .cover import (
    count_literals,
    cover_is_tautology,
    cube_covered,
    simplify_cover,
)

__all__ = [
    "Cube",
    "Expression",
    "GateEmitter",
    "best_kernel",
    "common_cube",
    "count_literals",
    "cover_is_tautology",
    "cube_covered",
    "divide_by_cube",
    "expression_from_cover",
    "factor_expression",
    "is_cube_free",
    "kernels",
    "literal_counts",
    "make_cube_free",
    "simplify_cover",
    "weak_division",
]
