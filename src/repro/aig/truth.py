"""Truth-table utilities and ISOP for cut resynthesis.

Truth tables are plain ints: bit ``m`` is the function value on minterm
``m`` over an ordered leaf list (leaf j = bit j of the minterm index).
Used by the AIG refactoring passes: collapse a cone to a table, derive
an irredundant SOP (Minato-Morreale), factor it algebraically and
rebuild it as AND/INV nodes.
"""

from __future__ import annotations

from ..sop.algebraic import Cube, Expression, GateEmitter, factor_expression

_VAR_MASKS: dict[tuple[int, int], int] = {}


def var_mask(var: int, num_vars: int) -> int:
    """Truth table of variable ``var`` over ``num_vars`` inputs."""
    key = (var, num_vars)
    cached = _VAR_MASKS.get(key)
    if cached is None:
        block = (1 << (1 << var)) - 1 if var < num_vars else 0
        stride = 1 << (var + 1)
        cached = 0
        for base in range(0, 1 << num_vars, stride):
            cached |= block << (base + (1 << var))
        _VAR_MASKS[key] = cached
    return cached


def full_mask(num_vars: int) -> int:
    return (1 << (1 << num_vars)) - 1


def cofactors(table: int, var: int, num_vars: int) -> tuple[int, int]:
    """Negative and positive cofactors, both padded back to num_vars."""
    mask = var_mask(var, num_vars)
    full = full_mask(num_vars)
    width = 1 << var
    positive = table & mask
    negative = table & ~mask & full
    positive |= positive >> width
    negative |= negative << width
    return negative & full, positive & full


def table_depends_on(table: int, var: int, num_vars: int) -> bool:
    negative, positive = cofactors(table, var, num_vars)
    return negative != positive


def isop(table: int, num_vars: int) -> list[str]:
    """Irredundant SOP of ``table`` as positional cover rows
    (Minato-Morreale recursion, no don't-cares)."""
    full = full_mask(num_vars)

    def recurse(current: int, var: int) -> list[str]:
        if current == 0:
            return []
        if current == full:
            return ["-" * num_vars]
        # Find the next variable the function depends on.
        while var < num_vars:
            negative, positive = cofactors(current, var, num_vars)
            if negative != positive:
                break
            var += 1
        else:
            raise AssertionError("non-constant table with no support")
        only_negative = recurse(negative & ~positive & full, var + 1)
        only_positive = recurse(positive & ~negative & full, var + 1)
        covered_negative = _eval_cover(only_negative, num_vars)
        covered_positive = _eval_cover(only_positive, num_vars)
        shared = recurse(
            (negative & ~covered_negative | positive & ~covered_positive) & full,
            var + 1,
        )
        rows = []
        for row in only_negative:
            rows.append(row[:var] + "0" + row[var + 1 :])
        for row in only_positive:
            rows.append(row[:var] + "1" + row[var + 1 :])
        rows.extend(shared)
        return rows

    return recurse(table & full, 0)


def _eval_cover(rows: list[str], num_vars: int) -> int:
    table = 0
    full = full_mask(num_vars)
    for row in rows:
        cube = full
        for var, ch in enumerate(row):
            if ch == "1":
                cube &= var_mask(var, num_vars)
            elif ch == "0":
                cube &= ~var_mask(var, num_vars) & full
        table |= cube
    return table


def cover_to_table(rows: list[str], num_vars: int) -> int:
    """Public wrapper of the cover evaluator (used by tests)."""
    return _eval_cover(rows, num_vars)


def synthesize_table(aig, table: int, leaves: list[int], num_vars: int) -> int:
    """Build an AIG literal computing ``table`` over ``leaves``
    (existing AIG literals), via ISOP + algebraic factoring.

    Chooses the cheaper polarity (the complement's ISOP is often
    smaller) and relies on strash for sharing with existing logic.
    """
    full = full_mask(num_vars)
    table &= full
    if table == 0:
        return aig.ZERO
    if table == full:
        return aig.ONE
    rows_pos = isop(table, num_vars)
    rows_neg = isop(table ^ full, num_vars)
    if _cover_cost(rows_neg) < _cover_cost(rows_pos):
        return _build_cover(aig, rows_neg, leaves) ^ 1
    return _build_cover(aig, rows_pos, leaves)


def _cover_cost(rows: list[str]) -> tuple[int, int]:
    return (sum(1 for row in rows for ch in row if ch != "-"), len(rows))


def _build_cover(aig, rows: list[str], leaves: list[int]) -> int:
    expression = Expression(
        Cube(
            (var, ch == "1")
            for var, ch in enumerate(row)
            if ch != "-"
        )
        for row in rows
    )
    emitter = GateEmitter(
        literal=lambda var, phase: leaves[var] ^ (0 if phase else 1),
        and2=aig.and_,
        or2=aig.or_,
        const=lambda value: aig.ONE if value else aig.ZERO,
    )
    return factor_expression(expression, emitter)
