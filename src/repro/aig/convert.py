"""Conversions between :class:`LogicNetwork` and :class:`Aig`."""

from __future__ import annotations

from ..network import LogicNetwork
from .aig import Aig


def network_to_aig(network: LogicNetwork) -> Aig:
    """Strash a logic network into an AIG (covers become OR-of-ANDs)."""
    aig = Aig()
    literals: dict[str, int] = {}
    for name in network.inputs:
        literals[name] = aig.add_input(name)
    for name in network.topological_order():
        node = network.node(name)
        terms = []
        for row in node.cover:
            term = aig.ONE
            for ch, fanin in zip(row, node.fanins):
                if ch == "1":
                    term = aig.and_(term, literals[fanin])
                elif ch == "0":
                    term = aig.and_(term, literals[fanin] ^ 1)
            terms.append(term)
        literal = aig.or_many(terms)
        literals[name] = literal ^ 1 if node.inverted else literal
    for output in network.outputs:
        aig.add_output(output, literals[output])
    return aig


def aig_to_network(
    aig: Aig, name: str = "from_aig", detect_xor: bool = False
) -> LogicNetwork:
    """Emit an AIG as a gate-level network of AND2 and NOT nodes.

    Inverters are shared (one NOT node per complemented signal); the
    primary outputs keep their names via buffer/inverter nodes so the
    interface matches the original network exactly.

    With ``detect_xor`` the classic three-AND pattern
    ``n = (a·b)'·(a'·b')'`` is recovered as a single XOR/XNOR gate when
    the inner ANDs have no other fanout — this emulates the Boolean
    matching an ABC-style mapper performs against XOR library cells.
    """
    network = LogicNetwork(name)
    signal_of: dict[int, str] = {}
    for pi_name in aig.inputs:
        network.add_input(pi_name)
        signal_of[aig.input_literal(pi_name) >> 1] = pi_name

    counter = [0]
    inverter_of: dict[str, str] = {}
    output_names = {po_name for po_name, _ in aig.outputs}

    def fresh(stem: str) -> str:
        counter[0] += 1
        candidate = f"{stem}{counter[0]}"
        while network.has_signal(candidate) or candidate in output_names:
            counter[0] += 1
            candidate = f"{stem}{counter[0]}"
        return candidate

    constant_one: list[str] = []

    def literal_signal(literal: int) -> str:
        node = literal >> 1
        if node == 0:
            if not constant_one:
                constant_one.append(network.add_const(fresh("const"), True))
            base = constant_one[0]
        else:
            base = signal_of[node]
        if literal & 1 == 0:
            return base
        existing = inverter_of.get(base)
        if existing is None:
            existing = network.add_not(fresh("inv"), base)
            inverter_of[base] = existing
        return existing

    topo = aig.reachable_ands()
    xor_of: dict[int, tuple[int, int]] = {}
    skipped: set[int] = set()
    if detect_xor:
        refs = aig.reference_counts()

        def xor_operands(node: int) -> tuple[int, int] | None:
            """Literals (p, q) with node == XOR(p, q), or None."""
            f0, f1 = aig.fanins(node)
            if not (f0 & 1 and f1 & 1):
                return None
            u, v = f0 >> 1, f1 >> 1
            if not (aig.is_and(u) and aig.is_and(v)):
                return None
            if refs.get(u, 0) != 1 or refs.get(v, 0) != 1:
                return None
            pu = aig.fanins(u)
            pv = aig.fanins(v)
            if {pv[0], pv[1]} == {pu[0] ^ 1, pu[1] ^ 1}:
                return pu
            return None

        # Claim patterns from the roots downward so a node consumed as
        # an inner AND is never also rewritten as an XOR root itself.
        for node in reversed(topo):
            if node in skipped:
                continue
            operands = xor_operands(node)
            if operands is not None:
                xor_of[node] = operands
                f0, f1 = aig.fanins(node)
                skipped.update((f0 >> 1, f1 >> 1))

    for node in topo:
        if node in skipped:
            continue
        operands = xor_of.get(node)
        if operands is not None:
            p, q = operands
            left = literal_signal(p & ~1)
            right = literal_signal(q & ~1)
            if (p & 1) ^ (q & 1):
                signal_of[node] = network.add_xnor(fresh("xnor"), left, right)
            else:
                signal_of[node] = network.add_xor(fresh("xor"), left, right)
            continue
        f0, f1 = aig.fanins(node)
        signal_of[node] = network.add_and(
            fresh("and"), literal_signal(f0), literal_signal(f1)
        )

    for po_name, literal in aig.outputs:
        node = literal >> 1
        if node == 0:
            network.add_const(po_name, literal == Aig.ONE)
        elif literal & 1:
            network.add_not(po_name, signal_of[node])
        else:
            network.add_buf(po_name, signal_of[node])
        network.add_output(po_name)
    return network
