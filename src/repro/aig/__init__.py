"""And-Inverter Graph substrate: the ABC-like optimization baseline."""

from .aig import Aig
from .convert import aig_to_network, network_to_aig
from .cuts import CutSet, cut_truth_table, enumerate_cuts
from .opt import balance, refactor, resyn2, resyn_quick, rewrite
from .truth import cover_to_table, full_mask, isop, synthesize_table, var_mask

__all__ = [
    "Aig",
    "aig_to_network",
    "balance",
    "CutSet",
    "cover_to_table",
    "cut_truth_table",
    "enumerate_cuts",
    "full_mask",
    "isop",
    "network_to_aig",
    "refactor",
    "resyn2",
    "resyn_quick",
    "rewrite",
    "synthesize_table",
    "var_mask",
]
