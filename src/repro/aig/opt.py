"""AIG optimization passes: balance, rewrite/refactor, resyn2.

These reimplement the algorithm family behind ABC's standard script
(the paper's baseline runs ``resyn2`` before mapping):

* :func:`balance` — rebuild AND trees balanced by level (depth
  reduction, no duplication: only single-fanout regular edges are
  collapsed into a super-gate);
* :func:`refactor` — for every node whose maximum fanout-free cone
  (MFFC) has few enough leaves, collapse the cone to a truth table,
  resynthesize it via ISOP + algebraic factoring and keep the result
  when it uses fewer nodes (``zero_cost`` keeps ties, enabling later
  passes to profit);
* :func:`rewrite` — the same engine restricted to 4-leaf cones
  (ABC's rewrite granularity);
* :func:`resyn2` — the classic ten-pass script.
"""

from __future__ import annotations

import heapq

from .aig import Aig
from .truth import full_mask, synthesize_table, var_mask


def balance(aig: Aig) -> Aig:
    """Depth-oriented rebuild of AND trees."""
    refs = aig.reference_counts()
    fresh = Aig()
    mapping: dict[int, int] = {0: Aig.ONE}
    level: dict[int, int] = {0: 0}
    for name in aig.inputs:
        literal = fresh.add_input(name)
        mapping[aig.input_literal(name) >> 1] = literal
        level[literal >> 1] = 0

    def literal_level(literal: int) -> int:
        return level.get(literal >> 1, 0)

    for node in aig.reachable_ands():
        # Collect the super-gate: descend through regular, single-fanout
        # AND edges (collapsing shared or complemented edges would
        # duplicate logic or change the function).
        leaves: list[int] = []
        stack = list(aig.fanins(node))
        while stack:
            literal = stack.pop()
            child = literal >> 1
            if (
                literal & 1 == 0
                and aig.is_and(child)
                and refs.get(child, 0) == 1
            ):
                stack.extend(aig.fanins(child))
            else:
                leaves.append(literal)
        mapped = [mapping[l >> 1] ^ (l & 1) for l in leaves]
        heap = [(literal_level(m), index, m) for index, m in enumerate(mapped)]
        heapq.heapify(heap)
        tiebreak = len(heap)
        while len(heap) > 1:
            l0, _, m0 = heapq.heappop(heap)
            l1, _, m1 = heapq.heappop(heap)
            combined = fresh.and_(m0, m1)
            level[combined >> 1] = max(l0, l1) + 1
            heapq.heappush(heap, (level[combined >> 1], tiebreak, combined))
            tiebreak += 1
        mapping[node] = heap[0][2] if heap else Aig.ONE

    for name, literal in aig.outputs:
        fresh.add_output(name, mapping[literal >> 1] ^ (literal & 1))
    return fresh


def _mffc(aig: Aig, root: int, refs: dict[int, int], max_leaves: int):
    """The maximum fanout-free cone of ``root``.

    Returns ``(cone_nodes, leaf_nodes)`` or ``None`` when the cone is
    trivial or has too many leaves.  A node joins the cone when *all*
    its fanouts are already inside, so removing the root frees exactly
    the cone.
    """
    cone: set[int] = {root}
    changed = True
    while changed:
        changed = False
        uses: dict[int, int] = {}
        for member in cone:
            for literal in aig.fanins(member):
                child = literal >> 1
                uses[child] = uses.get(child, 0) + 1
        for child, count in uses.items():
            if child in cone or not aig.is_and(child):
                continue
            if refs.get(child, 0) == count:
                cone.add(child)
                changed = True
    leaves: set[int] = set()
    for member in cone:
        for literal in aig.fanins(member):
            child = literal >> 1
            if child not in cone:
                leaves.add(child)
    if len(cone) < 2 or len(leaves) > max_leaves or len(leaves) < 2:
        return None
    return cone, sorted(leaves)


def _cone_truth_table(aig: Aig, root: int, cone: set[int], leaves: list[int]) -> int:
    num_vars = len(leaves)
    full = full_mask(num_vars)
    values: dict[int, int] = {0: full}
    for index, leaf in enumerate(leaves):
        values[leaf] = var_mask(index, num_vars)

    def value_of(node: int) -> int:
        cached = values.get(node)
        if cached is not None:
            return cached
        f0, f1 = aig.fanins(node)
        v0 = value_of(f0 >> 1) ^ (full if f0 & 1 else 0)
        v1 = value_of(f1 >> 1) ^ (full if f1 & 1 else 0)
        result = v0 & v1
        values[node] = result
        return result

    return value_of(root)


def refactor(aig: Aig, max_leaves: int = 8, zero_cost: bool = False) -> Aig:
    """Cone-based resynthesis (see module docstring)."""
    refs = aig.reference_counts()
    fresh = Aig()
    mapping: dict[int, int] = {0: Aig.ONE}
    for name in aig.inputs:
        mapping[aig.input_literal(name) >> 1] = fresh.add_input(name)

    for node in aig.reachable_ands():
        f0, f1 = aig.fanins(node)
        copied = fresh.and_(
            mapping[f0 >> 1] ^ (f0 & 1), mapping[f1 >> 1] ^ (f1 & 1)
        )
        cone_info = _mffc(aig, node, refs, max_leaves)
        if cone_info is None:
            mapping[node] = copied
            continue
        cone, leaves = cone_info
        table = _cone_truth_table(aig, node, cone, leaves)
        leaf_literals = [mapping[leaf] for leaf in leaves]
        before = fresh.num_nodes()
        candidate = synthesize_table(fresh, table, leaf_literals, len(leaves))
        added = fresh.num_nodes() - before
        budget = len(cone) if zero_cost else len(cone) - 1
        mapping[node] = candidate if added <= budget else copied

    for name, literal in aig.outputs:
        fresh.add_output(name, mapping[literal >> 1] ^ (literal & 1))
    result = fresh.cleanup()
    # Per-cone budgets are measured against the *old* cone, which the
    # copy path may beat through strash sharing; guard globally so a
    # pass never returns a larger graph.
    if result.size() > aig.size():
        return aig.cleanup()
    return result


def rewrite(aig: Aig, zero_cost: bool = False) -> Aig:
    """ABC-rewrite-granularity refactoring (4-leaf cones)."""
    return refactor(aig, max_leaves=4, zero_cost=zero_cost)


def resyn2(aig: Aig) -> Aig:
    """The classic ``resyn2`` sequence: b; rw; rf; b; rw; rwz; b; rfz;
    rwz; b — each step kept only if it does not hurt the node count
    (our passes are heuristic reimplementations, so we guard)."""
    passes = [
        balance,
        rewrite,
        refactor,
        balance,
        rewrite,
        lambda g: rewrite(g, zero_cost=True),
        balance,
        lambda g: refactor(g, zero_cost=True),
        lambda g: rewrite(g, zero_cost=True),
        balance,
    ]
    current = aig.cleanup()
    for optimization in passes:
        candidate = optimization(current)
        if candidate.size() <= current.size():
            current = candidate
    return current


def resyn_quick(aig: Aig) -> Aig:
    """A short script (balance; rewrite; balance) for quick runs."""
    current = aig.cleanup()
    for optimization in (balance, rewrite, balance):
        candidate = optimization(current)
        if candidate.size() <= current.size():
            current = candidate
    return current
