"""And-Inverter Graphs with structural hashing.

The substrate of the ABC-like baseline flow ([16] in the paper).  The
encoding mirrors the BDD package: a *literal* is ``(node_id << 1) |
complement``; node 0 is constant TRUE (literal 0), so literal 1 is
constant FALSE.  Primary inputs are nodes without fanins; every other
node is a two-input AND.  Structural hashing (strash) plus constant /
identity folding keep the graph reduced during construction.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class Aig:
    """A combinational AIG."""

    ONE = 0
    ZERO = 1

    def __init__(self) -> None:
        # fanins[i] is None for constants/PIs, else (lit0, lit1).
        self._fanins: list[tuple[int, int] | None] = [None]
        self._strash: dict[tuple[int, int], int] = {}
        self._pi_names: list[str] = []
        self._pi_nodes: list[int] = []
        self._pi_by_name: dict[str, int] = {}
        self._outputs: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its positive literal."""
        if name in self._pi_by_name:
            raise ValueError(f"duplicate AIG input {name!r}")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name)
        self._pi_nodes.append(node)
        self._pi_by_name[name] = node
        return node << 1

    def input_literal(self, name: str) -> int:
        return self._pi_by_name[name] << 1

    def add_output(self, name: str, literal: int) -> None:
        self._outputs.append((name, literal))

    def and_(self, a: int, b: int) -> int:
        """AND with folding and structural hashing."""
        if a == self.ZERO or b == self.ZERO:
            return self.ZERO
        if a == self.ONE:
            return b
        if b == self.ONE:
            return a
        if a == b:
            return a
        if a == b ^ 1:
            return self.ZERO
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return node << 1

    def not_(self, a: int) -> int:
        return a ^ 1

    def or_(self, a: int, b: int) -> int:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux(self, s: int, t: int, e: int) -> int:
        return self.or_(self.and_(s, t), self.and_(s ^ 1, e))

    def maj(self, a: int, b: int, c: int) -> int:
        return self.or_(
            self.and_(a, b), self.or_(self.and_(a, c), self.and_(b, c))
        )

    def and_many(self, literals: Iterable[int]) -> int:
        result = self.ONE
        for literal in literals:
            result = self.and_(result, literal)
        return result

    def or_many(self, literals: Iterable[int]) -> int:
        result = self.ZERO
        for literal in literals:
            result = self.or_(result, literal)
        return result

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._pi_names)

    @property
    def outputs(self) -> tuple[tuple[str, int], ...]:
        return tuple(self._outputs)

    def is_and(self, node: int) -> bool:
        return self._fanins[node] is not None

    def is_pi(self, node: int) -> bool:
        return self._fanins[node] is None and node != 0

    def fanins(self, node: int) -> tuple[int, int]:
        entry = self._fanins[node]
        if entry is None:
            raise ValueError(f"node {node} is not an AND")
        return entry

    def num_nodes(self) -> int:
        """Total AND nodes ever created (including dead ones)."""
        return sum(1 for entry in self._fanins if entry is not None)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def reachable_ands(self, roots: Iterable[int] | None = None) -> list[int]:
        """AND node ids reachable from ``roots`` (default: the POs),
        in topological order (fanins first)."""
        if roots is None:
            roots = [literal for _, literal in self._outputs]
        seen: set[int] = set()
        order: list[int] = []
        # Iterative DFS (deep circuits exceed Python's recursion limit).
        for root_literal in roots:
            stack: list[tuple[int, bool]] = [(root_literal >> 1, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if node in seen:
                    continue
                entry = self._fanins[node]
                if entry is None:
                    continue
                seen.add(node)
                stack.append((node, True))
                stack.append((entry[0] >> 1, False))
                stack.append((entry[1] >> 1, False))
        return order

    def size(self) -> int:
        """AND nodes reachable from the outputs."""
        return len(self.reachable_ands())

    def depth(self) -> int:
        """AND levels on the longest PI-to-PO path."""
        level: dict[int, int] = {0: 0}
        for node in self._pi_nodes:
            level[node] = 0
        result = 0
        for node in self.reachable_ands():
            f0, f1 = self._fanins[node]
            level[node] = 1 + max(level[f0 >> 1], level[f1 >> 1])
            result = max(result, level[node])
        return result

    def levels(self) -> dict[int, int]:
        level: dict[int, int] = {0: 0}
        for node in self._pi_nodes:
            level[node] = 0
        for node in self.reachable_ands():
            f0, f1 = self._fanins[node]
            level[node] = 1 + max(level[f0 >> 1], level[f1 >> 1])
        return level

    def reference_counts(self) -> dict[int, int]:
        """Fanout counts over the PO-reachable subgraph (PO refs count)."""
        refs: dict[int, int] = {}
        for node in self.reachable_ands():
            for literal in self._fanins[node]:
                refs[literal >> 1] = refs.get(literal >> 1, 0) + 1
        for _, literal in self._outputs:
            refs[literal >> 1] = refs.get(literal >> 1, 0) + 1
        return refs

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, stimulus: Mapping[str, int], mask: int) -> dict[str, int]:
        """Bit-parallel simulation; returns PO name -> packed vector."""
        values: dict[int, int] = {0: mask}
        for name, node in zip(self._pi_names, self._pi_nodes):
            values[node] = stimulus[name] & mask
        for node in self.reachable_ands():
            f0, f1 = self._fanins[node]
            v0 = values[f0 >> 1] ^ (mask if f0 & 1 else 0)
            v1 = values[f1 >> 1] ^ (mask if f1 & 1 else 0)
            values[node] = v0 & v1
        result = {}
        for name, literal in self._outputs:
            value = values.get(literal >> 1, 0 if literal >> 1 != 0 else mask)
            result[name] = (value ^ (mask if literal & 1 else 0)) & mask
        return result

    # ------------------------------------------------------------------
    # Cleanup / rebuild
    # ------------------------------------------------------------------
    def cleanup(self) -> "Aig":
        """A fresh AIG containing only PO-reachable logic."""
        fresh = Aig()
        mapping: dict[int, int] = {0: Aig.ONE}
        for name, node in zip(self._pi_names, self._pi_nodes):
            mapping[node] = fresh.add_input(name)
        for node in self.reachable_ands():
            f0, f1 = self._fanins[node]
            new0 = mapping[f0 >> 1] ^ (f0 & 1)
            new1 = mapping[f1 >> 1] ^ (f1 & 1)
            mapping[node] = fresh.and_(new0, new1)
        for name, literal in self._outputs:
            fresh.add_output(name, mapping[literal >> 1] ^ (literal & 1))
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Aig pis={len(self._pi_names)} ands={self.num_nodes()} pos={len(self._outputs)}>"
