"""K-feasible cut enumeration on AIGs.

The classic substrate of cut-based technology mapping and rewriting:
for every node, the set of ``k``-input cuts is the cross-merge of its
fanins' cut sets (bounded per node to keep enumeration linear-ish).
The refactoring passes use MFFC cones instead, but cut enumeration is
part of any credible AIG package and is exercised by the test suite,
including truth-table computation per cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aig import Aig
from .truth import full_mask, var_mask


@dataclass
class CutSet:
    """Cuts of one node: each cut is a sorted tuple of leaf node ids."""

    node: int
    cuts: list[tuple[int, ...]] = field(default_factory=list)


def enumerate_cuts(
    aig: Aig, k: int = 4, max_cuts_per_node: int = 8
) -> dict[int, list[tuple[int, ...]]]:
    """All ``k``-feasible cuts per reachable AND node.

    Every node also has its trivial cut ``(node,)``.  Cut sets are
    pruned by dominance (a cut whose leaves are a superset of another's
    is redundant) and capped at ``max_cuts_per_node`` (smallest first),
    as practical mappers do.
    """
    cuts: dict[int, list[tuple[int, ...]]] = {}

    def leaf_cuts(node: int) -> list[tuple[int, ...]]:
        return cuts.setdefault(node, [(node,)])

    for node in aig.reachable_ands():
        f0, f1 = aig.fanins(node)
        left = leaf_cuts(f0 >> 1)
        right = leaf_cuts(f1 >> 1)
        merged: list[tuple[int, ...]] = [(node,)]
        seen: set[tuple[int, ...]] = {(node,)}
        for cut0 in left:
            for cut1 in right:
                union = tuple(sorted(set(cut0) | set(cut1)))
                if len(union) > k or union in seen:
                    continue
                seen.add(union)
                merged.append(union)
        merged = _prune_dominated(merged)
        merged.sort(key=len)
        cuts[node] = merged[:max_cuts_per_node]
    return cuts


def _prune_dominated(cuts: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    result: list[tuple[int, ...]] = []
    as_sets = [set(cut) for cut in cuts]
    for i, cut in enumerate(cuts):
        dominated = any(
            j != i and as_sets[j] < as_sets[i] for j in range(len(cuts))
        )
        if not dominated:
            result.append(cut)
    return result


def cut_truth_table(aig: Aig, node: int, leaves: tuple[int, ...]) -> int:
    """Truth table of ``node`` over ``leaves`` (LSB-first leaf order).

    Every path from ``node`` must terminate at a leaf (guaranteed for
    cuts produced by :func:`enumerate_cuts`)."""
    num_vars = len(leaves)
    full = full_mask(num_vars)
    values: dict[int, int] = {0: full}
    for position, leaf in enumerate(leaves):
        values[leaf] = var_mask(position, num_vars)

    def value_of(current: int) -> int:
        cached = values.get(current)
        if cached is not None:
            return cached
        f0, f1 = aig.fanins(current)
        v0 = value_of(f0 >> 1) ^ (full if f0 & 1 else 0)
        v1 = value_of(f1 >> 1) ^ (full if f1 & 1 else 0)
        result = v0 & v1
        values[current] = result
        return result

    return value_of(node)
