"""Majority logic decomposition — Algorithm 1 of BDS-MAJ.

Given a function ``F``, find ``F = Maj(Fa, Fb, Fc)``:

α.  candidate ``Fa`` functions are rooted at non-trivial m-dominators
    (:mod:`repro.core.mdominators`);
β.  ``Fb`` and ``Fc`` are constructed per Theorem 3.2 with the
    Theorem 3.3 generalized-cofactor seeds::

        Fb = ITE(Fa ⊕ F, F, F|Fa)
        Fc = ITE(Fa ⊕ F, F, F|Fa')

γ.  the triple is improved by *cyclic balancing* (Theorem 3.4): for a
    pair (X, Y), ``Fx = X ⊕ Y`` is XOR-decomposed into balanced (M, K)
    and the pair is restructured as ``Xopt = ITE(Fx, K, X)``,
    ``Yopt = ITE(Fx, M, Y)`` — on inputs where X ≠ Y only the third
    function matters, so the pair may be freely rewritten there as long
    as it keeps disagreeing;
ω.  the best triple across all candidates is selected with the
    sum-of-sizes metric refined by the k-balance condition
    (Section III.E; local k = 1.5).

Every constructed triple is certified: ``Maj(Fa,Fb,Fc) == F`` is a
canonical BDD equality check, performed after construction and after
every balancing iteration (disable via ``MajorityConfig.verify`` for
speed once trust is established — the test suite always verifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import BDD
from ..bdd.cofactor import generalized_cofactor
from ..bdd.dominators import xor_split
from ..bdd.substitute import function_at
from .mdominators import MDominatorConfig, find_m_dominators


class MajorityDecompositionError(Exception):
    """Raised when a constructed triple fails the Maj == F certification."""


@dataclass
class MajorityConfig:
    """Tunables of Algorithm 1 with the paper's defaults."""

    #: Sizing factor of the local selection metric (Section IV.B).
    local_k: float = 1.5
    #: Maximum cyclic-optimization iterations (Section IV.B sets 5).
    max_balance_iterations: int = 5
    #: Generalized cofactor used for the Theorem 3.3 seeds.
    cofactor_method: str = "restrict"
    #: Certify Maj(Fa,Fb,Fc) == F after every construction step.
    verify: bool = True
    #: m-dominator selection constraints (α-phase).
    mdominator: MDominatorConfig = field(default_factory=MDominatorConfig)


@dataclass
class MajorityDecomposition:
    """A certified decomposition ``F = Maj(fa, fb, fc)`` (edges in ``mgr``)."""

    fa: int
    fb: int
    fc: int
    dominator_node: int = -1

    def parts(self) -> tuple[int, int, int]:
        return self.fa, self.fb, self.fc

    def sizes(self, mgr: BDD) -> tuple[int, int, int]:
        return mgr.size(self.fa), mgr.size(self.fb), mgr.size(self.fc)

    def total_size(self, mgr: BDD) -> int:
        return sum(self.sizes(mgr))


# ----------------------------------------------------------------------
# β-phase: construction (Theorems 3.2 / 3.3)
# ----------------------------------------------------------------------
def construct(mgr: BDD, f: int, fa: int, config: MajorityConfig | None = None) -> MajorityDecomposition:
    """Build ``Fb``/``Fc`` for a given ``Fa`` candidate (Equation 1 + 3)."""
    if config is None:
        config = MajorityConfig()
    if mgr.is_constant(fa):
        raise MajorityDecompositionError("Fa must not be constant")
    disagreement = mgr.xor(fa, f)
    seed_h = generalized_cofactor(mgr, f, fa, config.cofactor_method)
    seed_w = generalized_cofactor(mgr, f, fa ^ 1, config.cofactor_method)
    fb = mgr.ite(disagreement, f, seed_h)
    fc = mgr.ite(disagreement, f, seed_w)
    decomposition = MajorityDecomposition(fa, fb, fc)
    if config.verify:
        certify(mgr, f, decomposition)
    return decomposition


def certify(mgr: BDD, f: int, decomposition: MajorityDecomposition) -> None:
    """Raise unless ``Maj(Fa, Fb, Fc) == F`` (canonical equality)."""
    rebuilt = mgr.maj(*decomposition.parts())
    if rebuilt != f:
        raise MajorityDecompositionError(
            "majority decomposition does not reproduce F "
            f"(sizes {decomposition.sizes(mgr)})"
        )


# ----------------------------------------------------------------------
# γ-phase: cyclic balancing (Theorem 3.4)
# ----------------------------------------------------------------------
def balance_pair(mgr: BDD, x: int, y: int) -> tuple[int, int]:
    """Restructure the pair (X, Y) of a majority triple.

    ``Fx = X ⊕ Y`` is split into (M, K) with ``M ⊕ K = Fx`` (Equation 5)
    and the pair becomes ``ITE(Fx, K, X)``, ``ITE(Fx, M, Y)``
    (Equation 4): untouched where X == Y, rebalanced where they differ.
    """
    fx = mgr.xor(x, y)
    if fx == mgr.ZERO:
        return x, y
    m, k = xor_split(mgr, fx)
    x_new = mgr.ite(fx, k, x)
    y_new = mgr.ite(fx, m, y)
    return x_new, y_new


def optimize(
    mgr: BDD, f: int, decomposition: MajorityDecomposition, config: MajorityConfig | None = None
) -> MajorityDecomposition:
    """Iterate balancing over all pairs until no improvement or the
    iteration limit is reached; return the best certified triple seen."""
    if config is None:
        config = MajorityConfig()
    best = decomposition
    best_size = best.total_size(mgr)
    current = decomposition
    for _ in range(config.max_balance_iterations):
        fa, fb, fc = current.parts()
        # All pairs, in the order of Algorithm 1's inner loop.
        fb, fc = balance_pair(mgr, fb, fc)
        fa, fb = balance_pair(mgr, fa, fb)
        fa, fc = balance_pair(mgr, fa, fc)
        current = MajorityDecomposition(fa, fb, fc, current.dominator_node)
        if config.verify:
            certify(mgr, f, current)
        current_size = current.total_size(mgr)
        if current_size < best_size:
            best, best_size = current, current_size
        else:
            break  # no improvement this iteration
    return best


# ----------------------------------------------------------------------
# ω-phase: selection (Section III.E)
# ----------------------------------------------------------------------
def is_better(
    mgr: BDD,
    candidate: MajorityDecomposition,
    incumbent: MajorityDecomposition,
    k: float = 1.5,
) -> bool:
    """Local selection metric.

    The k-balance condition — every component of one triple being k
    times smaller than the other's — acts as a dominance certificate;
    otherwise the sum of sizes decides, with the largest component as
    tie-break (favouring balanced triples).
    """
    cand = candidate.sizes(mgr)
    inc = incumbent.sizes(mgr)
    if all(k * c <= i for c, i in zip(cand, inc)):
        return True
    if all(k * i <= c for c, i in zip(cand, inc)):
        return False
    if sum(cand) != sum(inc):
        return sum(cand) < sum(inc)
    return max(cand) < max(inc)


def accepts_globally(
    mgr: BDD, f: int, decomposition: MajorityDecomposition, k: float = 1.6
) -> bool:
    """Global selection metric (Section IV.B): compare against the size
    of the original BDD with sizing factor k = 1.6.

    Requires the summed size to beat the original *and* every component
    to be k times smaller — the latter also guarantees structural
    progress, hence termination of the recursive engine.
    """
    original = mgr.size(f)
    sizes = decomposition.sizes(mgr)
    if sum(sizes) >= original:
        return False
    return all(k * s <= original for s in sizes)


# ----------------------------------------------------------------------
# Algorithm 1, assembled
# ----------------------------------------------------------------------
def decompose_majority(
    mgr: BDD,
    f: int,
    config: MajorityConfig | None = None,
    simple_dominators: set[int] | None = None,
) -> MajorityDecomposition | None:
    """Run Algorithm 1 on ``f``; return the best certified triple or
    ``None`` when no m-dominator candidate exists.

    The caller decides acceptance (e.g. via :func:`accepts_globally`)
    — Algorithm 1 itself only ranks the candidates it found.
    ``simple_dominators`` is forwarded to the α-phase search.
    """
    if config is None:
        config = MajorityConfig()
    if mgr.is_constant(f):
        return None

    best: MajorityDecomposition | None = None
    for candidate in find_m_dominators(mgr, f, config.mdominator, simple_dominators):
        fa = function_at(mgr, candidate.node)
        try:
            decomposition = construct(mgr, f, fa, config)
        except MajorityDecompositionError:
            raise  # construction is proven correct; surface any violation
        decomposition.dominator_node = candidate.node
        decomposition = optimize(mgr, f, decomposition, config)
        if best is None or is_better(mgr, decomposition, best, config.local_k):
            best = decomposition
    return best
