"""Emit factoring trees as a gate-level :class:`LogicNetwork`.

The decomposition engine produces interned trees whose leaves are
global signal names (supernode boundaries).  This module materializes
them as a network: each distinct tree node becomes one gate node, so
the cross-supernode sharing detected by interning carries through to
the netlist (paper Section IV.C).
"""

from __future__ import annotations

from ..network import LogicNetwork
from .tree import TreeBuilder


def network_from_trees(
    builder: TreeBuilder,
    roots: dict[str, int],
    inputs: list[str],
    outputs: list[str],
    name: str = "decomposed",
) -> LogicNetwork:
    """Build a network computing ``roots`` (signal name -> tree id).

    Every signal in ``roots`` materializes as a node of that name (tree
    leaves reference these names, as do the primary ``outputs``).  Trees
    shared by several signals are emitted once plus buffer aliases.
    """
    network = LogicNetwork(name)
    for input_name in inputs:
        network.add_input(input_name)

    # Preferred name of each tree id: the first root signal using it.
    name_of_tree: dict[int, str] = {}
    for signal, tree_id in roots.items():
        name_of_tree.setdefault(tree_id, signal)

    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        candidate = f"w{counter[0]}"
        while network.has_signal(candidate) or candidate in roots:
            counter[0] += 1
            candidate = f"w{counter[0]}"
        return candidate

    emitted: dict[int, str] = {}

    def emit(tree_id: int) -> str:
        existing = emitted.get(tree_id)
        if existing is not None:
            return existing
        op = builder.op(tree_id)
        children = builder.children(tree_id)
        if op == "lit":
            signal = builder.literal_name(tree_id)
            emitted[tree_id] = signal
            return signal
        node_name = name_of_tree.get(tree_id)
        if node_name is None or network.has_signal(node_name):
            node_name = fresh()
        if op == "const0":
            network.add_const(node_name, False)
        elif op == "const1":
            network.add_const(node_name, True)
        elif op == "not":
            network.add_not(node_name, emit(children[0]))
        elif op == "and":
            network.add_and(node_name, emit(children[0]), emit(children[1]))
        elif op == "or":
            network.add_or(node_name, emit(children[0]), emit(children[1]))
        elif op == "xor":
            network.add_xor(node_name, emit(children[0]), emit(children[1]))
        elif op == "xnor":
            network.add_xnor(node_name, emit(children[0]), emit(children[1]))
        elif op == "maj":
            network.add_maj(
                node_name, emit(children[0]), emit(children[1]), emit(children[2])
            )
        else:  # pragma: no cover - builder produces no other ops
            raise ValueError(f"unexpected tree op {op!r}")
        emitted[tree_id] = node_name
        return node_name

    for tree_id in roots.values():
        emit(tree_id)
    # Alias roots whose tree was emitted under another signal's name
    # (shared trees) or resolves to a leaf/input.
    for signal, tree_id in roots.items():
        if not network.has_signal(signal):
            network.add_buf(signal, emitted[tree_id])

    for output_name in outputs:
        network.add_output(output_name)
    network.sweep_dangling()
    return network
