"""BDS-MAJ core: majority decomposition and the decomposition engine.

This package is the paper's primary contribution:

* :mod:`repro.core.mdominators` — the α-phase m-dominator search;
* :mod:`repro.core.majority` — Algorithm 1 (construction β, cyclic
  balancing γ, selection ω; Theorems 3.1-3.4);
* :mod:`repro.core.engine` — the combined BDS+MAJ recursive
  decomposition engine (BDS-PGA baseline via ``enable_majority=False``);
* :mod:`repro.core.tree` — interned factoring trees with on-line logic
  sharing and Table-I node accounting.
"""

from .engine import DecompositionEngine, EngineConfig, EngineStats
from .majority import (
    MajorityConfig,
    MajorityDecomposition,
    MajorityDecompositionError,
    accepts_globally,
    balance_pair,
    certify,
    construct,
    decompose_majority,
    is_better,
    optimize,
)
from .mdominators import MDominator, MDominatorConfig, find_m_dominators
from .tree import COUNTED_OPS, TreeBuilder, tree_from_bdd

__all__ = [
    "COUNTED_OPS",
    "DecompositionEngine",
    "EngineConfig",
    "EngineStats",
    "MDominator",
    "MDominatorConfig",
    "MajorityConfig",
    "MajorityDecomposition",
    "MajorityDecompositionError",
    "TreeBuilder",
    "accepts_globally",
    "balance_pair",
    "certify",
    "construct",
    "decompose_majority",
    "find_m_dominators",
    "is_better",
    "optimize",
    "tree_from_bdd",
]
