"""The BDS-MAJ decomposition engine (paper Section IV.B).

Recursively decomposes a BDD into a factoring tree:

1. constants and literals terminate the recursion;
2. **majority decomposition is tried first** — a radix-3 split is
   potentially much more advantageous than the radix-2 ones — and is
   accepted under the *global majority selection* metric (k = 1.6
   against the original BDD size);
3. otherwise the best certified simple-dominator decomposition
   (AND / OR / XOR) is applied;
4. as a last resort the function is cofactored against its top
   variable (MUX / Shannon expansion).

Setting ``enable_majority=False`` turns the engine into the BDS-PGA
baseline: identical machinery minus step 2, which is exactly the
comparison Table I draws.

Results are memoized per BDD edge, so logic sharing inside a supernode
is detected through BDD canonicity (Section IV.C), and the shared
:class:`~repro.core.tree.TreeBuilder` extends the sharing across
supernodes of the same network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import BDD
from ..bdd.dominators import (
    KIND_AND,
    KIND_OR,
    best_simple_decomposition,
    find_simple_decompositions,
)
from .majority import MajorityConfig, accepts_globally, decompose_majority
from .tree import TreeBuilder


@dataclass
class EngineConfig:
    """Engine tunables; defaults follow Section IV.B."""

    #: Attempt majority decomposition (False = BDS-PGA baseline).
    enable_majority: bool = True
    #: Global majority selection sizing factor (paper: 1.6).
    global_k: float = 1.6
    #: Algorithm 1 configuration (local k = 1.5, 5 balancing iterations).
    majority: MajorityConfig = field(default_factory=MajorityConfig)
    #: Skip the majority search outside this BDD-size window (runtime
    #: guard; Section III.F's "tight selection constraints").
    min_majority_size: int = 3
    max_majority_size: int = 250


@dataclass
class EngineStats:
    """Counts of decomposition steps taken (for reporting and tests)."""

    majority: int = 0
    and_or: int = 0
    xor: int = 0
    mux: int = 0
    literal: int = 0
    constant: int = 0
    cache_hits: int = 0
    #: Snapshot of the BDD manager's unified operation-cache counters
    #: (see :meth:`repro.bdd.BDD.cache_stats`), refreshed by
    #: :meth:`DecompositionEngine.cache_report`.
    bdd_cache: dict[str, int | float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int | float]:
        result: dict[str, int | float] = {
            "majority": self.majority,
            "and_or": self.and_or,
            "xor": self.xor,
            "mux": self.mux,
            "literal": self.literal,
            "constant": self.constant,
            "cache_hits": self.cache_hits,
        }
        for key, value in self.bdd_cache.items():
            result[f"bdd_cache_{key}"] = value
        return result


class DecompositionEngine:
    """Decompose functions of one BDD manager into factoring trees."""

    def __init__(
        self,
        mgr: BDD,
        builder: TreeBuilder | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.mgr = mgr
        self.builder = builder if builder is not None else TreeBuilder()
        self.config = config if config is not None else EngineConfig()
        self.stats = EngineStats()
        self._cache: dict[int, int] = {}
        # Reachable-size memo, keyed by regular edge (a function and its
        # complement share one entry): every decomposition step asks for
        # the size of its operand, and the recursion revisits shared
        # subfunctions, so the O(nodes) reachability walk would
        # otherwise repeat per visit.
        self._sizes: dict[int, int] = {}

    def decompose(self, f: int) -> int:
        """Return the factoring-tree id computing the function ``f``."""
        mgr = self.mgr
        builder = self.builder

        cached = self._cache.get(f)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        complement_cached = self._cache.get(f ^ 1)
        if complement_cached is not None:
            self.stats.cache_hits += 1
            result = builder.not_(complement_cached)
            self._cache[f] = result
            return result

        result = self._decompose_uncached(f)
        self._cache[f] = result
        return result

    def _size(self, f: int) -> int:
        key = f & ~1
        size = self._sizes.get(key)
        if size is None:
            size = self.mgr.size(f)
            self._sizes[key] = size
        return size

    def cache_report(self) -> dict[str, int | float]:
        """Snapshot the manager's unified op-cache counters into
        :attr:`stats` and return them (flows aggregate this per
        supernode for the paper tables and the batch service)."""
        stats = self.mgr.cache_stats()
        self.stats.bdd_cache = stats
        return stats

    def _decompose_uncached(self, f: int) -> int:
        mgr = self.mgr
        builder = self.builder

        if f == mgr.ONE:
            self.stats.constant += 1
            return builder.CONST1
        if f == mgr.ZERO:
            self.stats.constant += 1
            return builder.CONST0

        size = self._size(f)
        if size == 1:
            # Canonical single-node functions are exactly the literals.
            self.stats.literal += 1
            literal = builder.literal(mgr.top_var_name(f))
            return builder.not_(literal) if f & 1 else literal

        config = self.config
        # One certification scan serves both the AND/OR/XOR search and
        # the m-dominator exclusion filter (condition (i) of III.B).
        simple_candidates = find_simple_decompositions(mgr, f)
        if (
            config.enable_majority
            and config.min_majority_size <= size <= config.max_majority_size
        ):
            simple_nodes = {d.node for d in simple_candidates}
            majority = decompose_majority(
                mgr, f, config.majority, simple_dominators=simple_nodes
            )
            if majority is not None and accepts_globally(mgr, f, majority, config.global_k):
                self.stats.majority += 1
                return builder.maj(
                    self.decompose(majority.fa),
                    self.decompose(majority.fb),
                    self.decompose(majority.fc),
                )

        simple = best_simple_decomposition(mgr, f, simple_candidates)
        if simple is not None:
            upper_tree = self.decompose(simple.upper)
            lower_tree = self.decompose(simple.lower)
            if simple.kind == KIND_AND:
                self.stats.and_or += 1
                return builder.and_(upper_tree, lower_tree)
            if simple.kind == KIND_OR:
                self.stats.and_or += 1
                return builder.or_(upper_tree, lower_tree)
            self.stats.xor += 1
            return builder.xor(upper_tree, lower_tree)

        # Last resort: Shannon cofactoring against the top variable.
        self.stats.mux += 1
        top_level = mgr.level_of_edge(f)
        high, low = mgr._cofactors(f, top_level)
        select = builder.literal(mgr.name_of(top_level))
        return builder.mux(select, self.decompose(high), self.decompose(low))
