"""Factoring trees: the output structure of the decomposition engine.

BDS stores decomposition results in *factoring trees* whose bottom-up
construction enables on-line logic sharing (paper Section IV.C).  Here
the trees are interned in a :class:`TreeBuilder`: structurally identical
subtrees receive the same id, so sharing detection is automatic both
inside one supernode and across supernodes of the same network (all
leaves are global net names).

Node operators mirror the paper's Table I gate classes — AND, OR, XOR,
XNOR and MAJ — plus free inverters (NOT), literals and constants.  MUX
decompositions (the engine's last resort) are expanded into AND/OR/NOT
on construction, matching how BDS accounts nodes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

#: Operators that Table I counts as network nodes.
COUNTED_OPS = ("and", "or", "xor", "xnor", "maj")

#: All operators a tree node may carry.
ALL_OPS = (*COUNTED_OPS, "not", "lit", "const0", "const1")


class TreeBuilder:
    """Interning builder for factoring trees.

    Node ids are small ints; id 0 is constant FALSE and id 1 constant
    TRUE.  Children tuples of commutative operators are sorted so that
    commuted constructions share structure.
    """

    CONST0 = 0
    CONST1 = 1

    def __init__(self) -> None:
        self._ops: list[str] = ["const0", "const1"]
        self._children: list[tuple[int, ...]] = [(), ()]
        self._payload: list[str | None] = [None, None]
        self._intern: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Node constructors
    # ------------------------------------------------------------------
    def _node(self, op: str, children: tuple[int, ...], payload: str | None = None) -> int:
        key = (op, children, payload)
        node_id = self._intern.get(key)
        if node_id is None:
            node_id = len(self._ops)
            self._ops.append(op)
            self._children.append(children)
            self._payload.append(payload)
            self._intern[key] = node_id
        return node_id

    def const(self, value: bool) -> int:
        return self.CONST1 if value else self.CONST0

    def literal(self, name: str) -> int:
        return self._node("lit", (), name)

    def not_(self, child: int) -> int:
        if child == self.CONST0:
            return self.CONST1
        if child == self.CONST1:
            return self.CONST0
        if self._ops[child] == "not":
            return self._children[child][0]
        return self._node("not", (child,))

    def and_(self, left: int, right: int) -> int:
        if left == self.CONST0 or right == self.CONST0:
            return self.CONST0
        if left == self.CONST1:
            return right
        if right == self.CONST1:
            return left
        if left == right:
            return left
        if left > right:
            left, right = right, left
        return self._node("and", (left, right))

    def or_(self, left: int, right: int) -> int:
        if left == self.CONST1 or right == self.CONST1:
            return self.CONST1
        if left == self.CONST0:
            return right
        if right == self.CONST0:
            return left
        if left == right:
            return left
        if left > right:
            left, right = right, left
        return self._node("or", (left, right))

    def xor(self, left: int, right: int) -> int:
        if left == right:
            return self.CONST0
        if left == self.CONST0:
            return right
        if right == self.CONST0:
            return left
        if left == self.CONST1:
            return self.not_(right)
        if right == self.CONST1:
            return self.not_(left)
        # Absorb input inverters: a ^ b' == a XNOR b (matches how BDS
        # emits XNOR gates from complemented x-dominator edges).
        if self._ops[left] == "not":
            return self.xnor(self._children[left][0], right)
        if self._ops[right] == "not":
            return self.xnor(left, self._children[right][0])
        if left > right:
            left, right = right, left
        return self._node("xor", (left, right))

    def xnor(self, left: int, right: int) -> int:
        if left == right:
            return self.CONST1
        if left == self.CONST0:
            return self.not_(right)
        if right == self.CONST0:
            return self.not_(left)
        if left == self.CONST1:
            return right
        if right == self.CONST1:
            return left
        if self._ops[left] == "not":
            return self.xor(self._children[left][0], right)
        if self._ops[right] == "not":
            return self.xor(left, self._children[right][0])
        if left > right:
            left, right = right, left
        return self._node("xnor", (left, right))

    def maj(self, a: int, b: int, c: int) -> int:
        children = sorted((a, b, c))
        a, b, c = children
        if a == b:
            return a
        if b == c:
            return b
        if a == self.CONST0:
            return self.and_(b, c)
        if a == self.CONST1:
            return self.or_(b, c)
        # After sorting, constants can only sit in the first slot.
        return self._node("maj", (a, b, c))

    def mux(self, select: int, when_true: int, when_false: int) -> int:
        """Expanded immediately: ``s·t + s'·e`` (BDS counts MUX this way
        when the target library has no MUX primitive)."""
        return self.or_(
            self.and_(select, when_true),
            self.and_(self.not_(select), when_false),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def op(self, node_id: int) -> str:
        return self._ops[node_id]

    def children(self, node_id: int) -> tuple[int, ...]:
        return self._children[node_id]

    def payload(self, node_id: int) -> str | None:
        return self._payload[node_id]

    def literal_name(self, node_id: int) -> str:
        if self._ops[node_id] != "lit":
            raise ValueError(f"node {node_id} is not a literal")
        name = self._payload[node_id]
        assert name is not None
        return name

    def __len__(self) -> int:
        return len(self._ops)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[int]) -> list[int]:
        """Node ids reachable from ``roots`` (each once, parents first)."""
        seen: set[int] = set()
        order: list[int] = []
        stack = list(roots)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            order.append(node_id)
            stack.extend(self._children[node_id])
        return order

    def count_ops(self, roots: Iterable[int]) -> dict[str, int]:
        """Table-I style node counts (shared nodes counted once).

        Only the five counted operators appear in the result; inverters,
        literals and constants are free in the BDS accounting.
        """
        counts = {op: 0 for op in COUNTED_OPS}
        for node_id in self.reachable(roots):
            op = self._ops[node_id]
            if op in counts:
                counts[op] += 1
        return counts

    def total_nodes(self, roots: Iterable[int]) -> int:
        return sum(self.count_ops(roots).values())

    def depth(self, node_id: int) -> int:
        """Longest literal-to-root path counting counted ops and NOT as 1."""
        cache: dict[int, int] = {}

        def walk(current: int) -> int:
            cached = cache.get(current)
            if cached is not None:
                return cached
            children = self._children[current]
            if not children:
                result = 0
            else:
                result = 1 + max(walk(child) for child in children)
            cache[current] = result
            return result

        return walk(node_id)

    def support(self, node_id: int) -> set[str]:
        """Literal names reachable from ``node_id``."""
        return {
            self._payload[n]  # type: ignore[misc]
            for n in self.reachable([node_id])
            if self._ops[n] == "lit"
        }

    def eval(self, node_id: int, assignment: Mapping[str, object]) -> bool:
        """Evaluate the tree under ``assignment`` (literal name -> bool)."""
        cache: dict[int, bool] = {}

        def walk(current: int) -> bool:
            cached = cache.get(current)
            if cached is not None:
                return cached
            op = self._ops[current]
            children = self._children[current]
            if op == "const0":
                value = False
            elif op == "const1":
                value = True
            elif op == "lit":
                value = bool(assignment[self._payload[current]])
            elif op == "not":
                value = not walk(children[0])
            elif op == "and":
                value = walk(children[0]) and walk(children[1])
            elif op == "or":
                value = walk(children[0]) or walk(children[1])
            elif op == "xor":
                value = walk(children[0]) != walk(children[1])
            elif op == "xnor":
                value = walk(children[0]) == walk(children[1])
            elif op == "maj":
                total = sum(walk(child) for child in children)
                value = total >= 2
            else:  # pragma: no cover - exhaustive over ALL_OPS
                raise ValueError(f"unknown op {op!r}")
            cache[current] = value
            return value

        return walk(node_id)

    def to_expression(self, node_id: int) -> str:
        """Human-readable infix rendering (examples / debugging)."""
        op = self._ops[node_id]
        children = self._children[node_id]
        if op == "const0":
            return "0"
        if op == "const1":
            return "1"
        if op == "lit":
            return str(self._payload[node_id])
        if op == "not":
            return f"~{self.to_expression(children[0])}"
        if op == "maj":
            parts = ", ".join(self.to_expression(child) for child in children)
            return f"MAJ({parts})"
        symbol = {"and": "&", "or": "|", "xor": "^", "xnor": "=="}[op]
        rendered = f" {symbol} ".join(self.to_expression(child) for child in children)
        return f"({rendered})"


def tree_from_bdd(
    builder: TreeBuilder, mgr, edge: int, name_of_level: Callable[[int], str] | None = None
) -> int:
    """Literal translation of a BDD to a MUX-expanded factoring tree.

    Used as a *reference* (e.g. to sanity-check engine output); the
    decomposition engine produces far better trees.
    """
    if name_of_level is None:
        name_of_level = mgr.name_of
    cache: dict[int, int] = {}

    def walk(e: int) -> int:
        complement = e & 1
        index = e >> 1
        if index == 0:
            result = builder.CONST1
        else:
            result = cache.get(index, -1)
            if result < 0:
                level, high, low = mgr.node_fields(index)
                select = builder.literal(name_of_level(level))
                result = builder.mux(select, walk(high), walk(low))
                cache[index] = result
        return builder.not_(result) if complement else result

    return walk(edge)
