"""m-dominator search (paper Section III.B).

A *non-trivial m-dominator* is an internal BDD node that

(i)  is not a simple x-, 0- or 1-dominator — those already certify a
     cheaper radix-2 decomposition, and
(ii) has more than one non-complemented incoming edge (0-incoming plus
     1-incoming) — the intuition being that the ``Fa`` of a good
     ``Maj(Fa, Fb, Fc)`` must be reached for the input combinations of
     both ``Maj(Fa, 0, 1)`` and ``Maj(Fa, 1, 0)``, hence is a highly
     connected node.

The number of candidates is ``O(N)`` in general; following Section
III.F the search supports "tighter selection constraints" — a fan-in
threshold and a cap on the number of returned candidates — which keep
the overall decomposition near-linear in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import BDD
from ..bdd.dominators import simple_dominator_nodes
from ..bdd.substitute import edge_statistics


@dataclass
class MDominatorConfig:
    """Selection constraints for the m-dominator search.

    ``min_regular_fanin`` implements condition (ii): the node's regular
    0-incoming plus 1-incoming edge count must be at least this value
    (the paper's "more than one" = 2).  ``max_candidates`` bounds the
    number of Fa candidates examined per function (Section III.F's
    "tight selection constraints"); candidates are ranked by fan-in.
    ``relax_if_empty`` retries with a fan-in threshold of 1 when the
    strict criteria produce no candidate, which lets small functions
    (e.g. 3-input majority sub-blocks) still be examined.
    """

    min_regular_fanin: int = 2
    max_candidates: int = 5
    relax_if_empty: bool = True
    exclude_simple_dominators: bool = True


@dataclass
class MDominator:
    """One candidate: node index and its fan-in score."""

    node: int
    regular_fanin: int
    total_fanin: int


def find_m_dominators(
    mgr: BDD,
    root: int,
    config: MDominatorConfig | None = None,
    simple_dominators: set[int] | None = None,
) -> list[MDominator]:
    """Non-trivial m-dominator candidates of ``root``, best first.

    The root's own node is excluded (it would only produce the trivial
    ``Maj(F, F, anything)`` decomposition).  ``simple_dominators`` lets
    a caller that already classified the simple dominators (the engine
    does, for its own AND/OR/XOR search) pass the set in instead of
    paying for a second scan.
    """
    if config is None:
        config = MDominatorConfig()
    if mgr.is_constant(root):
        return []

    stats = edge_statistics(mgr, [root])
    excluded: set[int] = {root >> 1}
    if config.exclude_simple_dominators:
        if simple_dominators is None:
            simple_dominators = simple_dominator_nodes(mgr, root)
        excluded |= simple_dominators

    candidates = _collect(mgr, root, stats, excluded, config.min_regular_fanin)
    if not candidates and config.relax_if_empty and config.min_regular_fanin > 1:
        candidates = _collect(mgr, root, stats, excluded, 1)

    candidates.sort(key=lambda c: (-c.regular_fanin, -c.total_fanin, c.node))
    if config.max_candidates > 0:
        candidates = candidates[: config.max_candidates]
    return candidates


def _collect(
    mgr: BDD,
    root: int,
    stats,
    excluded: set[int],
    min_regular_fanin: int,
) -> list[MDominator]:
    result = []
    for index in mgr.nodes_reachable([root]):
        if index in excluded:
            continue
        entry = stats.of(index)
        regular = entry.regular_zero + entry.one
        if regular < min_regular_fanin:
            continue
        result.append(MDominator(index, regular, entry.total))
    return result
