"""Majority-Inverter Graphs (MIGs) — the paper's future-work extension.

BDS-MAJ was the seed of the later MIG line of work (Amarù et al.,
DAC 2014): once majority decomposition exposes MAJ structure, the
natural next step is a logic representation made *only* of 3-input
majority nodes and inverters.  AND and OR become majorities with a
constant input (``ab = Maj(a, b, 0)``, ``a+b = Maj(a, b, 1)``), so MIGs
generalize AIGs while being exponentially more compact on some
arithmetic functions.

This module provides the data structure with the MIG axioms applied as
construction-time folds:

* **commutativity** — children kept sorted (canonical strash key);
* **majority** — ``Maj(x, x, y) = x`` and ``Maj(x, x', y) = y``;
* **self-duality** — ``Maj(x', y', z') = Maj(x, y, z)'``, used to keep
  at most one complemented child per node (canonical polarity);
* constant folds via the AND/OR specializations.

plus conversion from factoring trees (so a BDS-MAJ decomposition can be
re-expressed as a MIG) and depth/size-oriented rewriting built on the
associativity axiom.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class Mig:
    """A majority-inverter graph.

    Literals are ``(node_id << 1) | complement``; node 0 is constant
    TRUE, so ``Mig.ONE == 0`` and ``Mig.ZERO == 1``.
    """

    ONE = 0
    ZERO = 1

    def __init__(self) -> None:
        # fanins[i] is None for constants/PIs, else a sorted 3-tuple.
        self._fanins: list[tuple[int, int, int] | None] = [None]
        self._strash: dict[tuple[int, int, int], int] = {}
        self._pi_names: list[str] = []
        self._pi_by_name: dict[str, int] = {}
        self._outputs: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        if name in self._pi_by_name:
            raise ValueError(f"duplicate MIG input {name!r}")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name)
        self._pi_by_name[name] = node
        return node << 1

    def input_literal(self, name: str) -> int:
        return self._pi_by_name[name] << 1

    def add_output(self, name: str, literal: int) -> None:
        self._outputs.append((name, literal))

    def maj(self, a: int, b: int, c: int) -> int:
        """The canonical MAJ constructor (axioms applied)."""
        a, b, c = sorted((a, b, c))
        # Majority axiom: Maj(x, x, y) = x ; Maj(x, x', y) = y.
        if a == b:
            return a
        if b == c:
            return b
        if a ^ 1 == b:
            return c
        if b ^ 1 == c:
            return a
        if a ^ 1 == c:  # cannot happen with sorted literals, kept for clarity
            return b
        # Constant folds: Maj(1, x, y) = x + y ; Maj(0, x, y) = x·y are
        # *represented* as majority nodes (that is the point of MIGs),
        # but a constant pair was already folded above.
        # Self-duality: keep at most one complemented child.
        complemented = (a & 1) + (b & 1) + (c & 1)
        negate_out = False
        if complemented >= 2:
            a, b, c = sorted((a ^ 1, b ^ 1, c ^ 1))
            negate_out = True
        key = (a, b, c)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        literal = node << 1
        return literal ^ 1 if negate_out else literal

    def not_(self, a: int) -> int:
        return a ^ 1

    def and_(self, a: int, b: int) -> int:
        return self.maj(a, b, self.ZERO)

    def or_(self, a: int, b: int) -> int:
        return self.maj(a, b, self.ONE)

    def xor_(self, a: int, b: int) -> int:
        # Maj-only XOR: a^b = Maj(Maj(a,b,0)', Maj(a,b,1), 0) — i.e.
        # (a+b)·(ab)'.
        return self.and_(self.or_(a, b), self.and_(a, b) ^ 1)

    # ------------------------------------------------------------------
    # Accessors / analysis
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._pi_names)

    @property
    def outputs(self) -> tuple[tuple[str, int], ...]:
        return tuple(self._outputs)

    def is_maj(self, node: int) -> bool:
        return self._fanins[node] is not None

    def fanins(self, node: int) -> tuple[int, int, int]:
        entry = self._fanins[node]
        if entry is None:
            raise ValueError(f"node {node} is not a MAJ node")
        return entry

    def reachable_majs(self, roots: Iterable[int] | None = None) -> list[int]:
        """MAJ node ids reachable from ``roots`` (default POs), fanins
        first (iterative DFS)."""
        if roots is None:
            roots = [literal for _, literal in self._outputs]
        seen: set[int] = set()
        order: list[int] = []
        for root in roots:
            stack: list[tuple[int, bool]] = [(root >> 1, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if node in seen:
                    continue
                entry = self._fanins[node]
                if entry is None:
                    continue
                seen.add(node)
                stack.append((node, True))
                for child in entry:
                    stack.append((child >> 1, False))
        return order

    def size(self) -> int:
        """MAJ nodes reachable from the outputs."""
        return len(self.reachable_majs())

    def depth(self) -> int:
        """MAJ levels on the longest path (inverters are free)."""
        level: dict[int, int] = {0: 0}
        for node in range(1, len(self._fanins)):
            if self._fanins[node] is None:
                level[node] = 0
        best = 0
        for node in self.reachable_majs():
            children = self._fanins[node]
            level[node] = 1 + max(level[child >> 1] for child in children)
            best = max(best, level[node])
        return best

    def simulate(self, stimulus: Mapping[str, int], mask: int) -> dict[str, int]:
        """Bit-parallel simulation; returns PO name -> packed vector."""
        values: dict[int, int] = {0: mask}
        for name in self._pi_names:
            values[self._pi_by_name[name]] = stimulus[name] & mask
        for node in self.reachable_majs():
            a, b, c = self._fanins[node]
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = (va & vb) | (va & vc) | (vb & vc)
        result = {}
        for name, literal in self._outputs:
            value = values[literal >> 1]
            result[name] = (value ^ (mask if literal & 1 else 0)) & mask
        return result

    def cleanup(self) -> "Mig":
        """A fresh MIG with only PO-reachable nodes."""
        fresh = Mig()
        mapping: dict[int, int] = {0: Mig.ONE}
        for name in self._pi_names:
            mapping[self._pi_by_name[name]] = fresh.add_input(name)
        for node in self.reachable_majs():
            a, b, c = self._fanins[node]
            mapping[node] = fresh.maj(
                mapping[a >> 1] ^ (a & 1),
                mapping[b >> 1] ^ (b & 1),
                mapping[c >> 1] ^ (c & 1),
            )
        for name, literal in self._outputs:
            fresh.add_output(name, mapping[literal >> 1] ^ (literal & 1))
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Mig pis={len(self._pi_names)} majs={self.size()} "
            f"pos={len(self._outputs)}>"
        )
