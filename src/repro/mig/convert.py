"""Conversions into and out of MIGs."""

from __future__ import annotations

from ..core.tree import TreeBuilder
from ..network import LogicNetwork
from .mig import Mig


def network_to_mig(network: LogicNetwork) -> Mig:
    """Strash a logic network into a MIG.

    Recognized gates map natively — in particular a MAJ-shaped SOP
    cover becomes *one* majority node, which is where MIGs beat
    OR-of-AND translations — and general covers fall back to
    constant-input majorities (AND/OR)."""
    from ..mapping.mapper import classify_gate

    mig = Mig()
    literals: dict[str, int] = {}
    for name in network.inputs:
        literals[name] = mig.add_input(name)
    for name in network.topological_order():
        node = network.node(name)
        kind, out_inv, fanins = classify_gate(node)
        if kind == "const0":
            literal = Mig.ZERO
        elif kind == "const1":
            literal = Mig.ONE
        elif kind == "buf":
            literal = literals[fanins[0]]
        elif kind == "and":
            literal = mig.and_(literals[fanins[0]], literals[fanins[1]])
        elif kind == "or":
            literal = mig.or_(literals[fanins[0]], literals[fanins[1]])
        elif kind == "andnot":
            literal = mig.and_(literals[fanins[0]], literals[fanins[1]] ^ 1)
        elif kind == "notand":
            literal = mig.and_(literals[fanins[0]] ^ 1, literals[fanins[1]])
        elif kind == "xor":
            literal = mig.xor_(literals[fanins[0]], literals[fanins[1]])
        elif kind == "maj":
            literal = mig.maj(*(literals[f] for f in fanins))
        elif kind == "mux":
            select, when_true, when_false = (literals[f] for f in fanins)
            literal = mig.or_(
                mig.and_(select, when_true), mig.and_(select ^ 1, when_false)
            )
        else:  # general SOP
            literal = Mig.ZERO
            for row in node.cover:
                term = Mig.ONE
                for ch, fanin in zip(row, node.fanins):
                    if ch == "1":
                        term = mig.and_(term, literals[fanin])
                    elif ch == "0":
                        term = mig.and_(term, literals[fanin] ^ 1)
                literal = mig.or_(literal, term)
            literals[name] = literal ^ 1 if node.inverted else literal
            continue
        literals[name] = literal ^ 1 if out_inv else literal
    for output in network.outputs:
        mig.add_output(output, literals[output])
    return mig


def trees_to_mig(
    builder: TreeBuilder, roots: dict[str, int], inputs: list[str]
) -> Mig:
    """Re-express BDS-MAJ factoring trees as a MIG.

    MAJ tree nodes become native majority nodes (no expansion), which
    is the representational advantage the MIG line of work built on.
    Tree leaves may reference other supernode roots (boundary signals);
    those are resolved recursively, so passing the full root map of a
    decomposed network yields one connected MIG.
    """
    mig = Mig()
    signal_literal: dict[str, int] = {}
    for name in inputs:
        signal_literal[name] = mig.add_input(name)
    cache: dict[int, int] = {}

    def resolve_signal(name: str) -> int:
        cached = signal_literal.get(name)
        if cached is not None:
            return cached
        if name not in roots:
            raise KeyError(
                f"tree leaf {name!r} is neither an input nor a root signal"
            )
        literal = build(roots[name])
        signal_literal[name] = literal
        return literal

    def build(tree_id: int) -> int:
        cached = cache.get(tree_id)
        if cached is not None:
            return cached
        op = builder.op(tree_id)
        children = builder.children(tree_id)
        if op == "const0":
            literal = Mig.ZERO
        elif op == "const1":
            literal = Mig.ONE
        elif op == "lit":
            literal = resolve_signal(builder.literal_name(tree_id))
        elif op == "not":
            literal = build(children[0]) ^ 1
        elif op == "and":
            literal = mig.and_(build(children[0]), build(children[1]))
        elif op == "or":
            literal = mig.or_(build(children[0]), build(children[1]))
        elif op == "xor":
            literal = mig.xor_(build(children[0]), build(children[1]))
        elif op == "xnor":
            literal = mig.xor_(build(children[0]), build(children[1])) ^ 1
        elif op == "maj":
            literal = mig.maj(*(build(child) for child in children))
        else:  # pragma: no cover - exhaustive over tree ops
            raise ValueError(f"unexpected tree op {op!r}")
        cache[tree_id] = literal
        return literal

    for name in roots:
        mig.add_output(name, resolve_signal(name))
    return mig


def mig_to_network(mig: Mig, name: str = "from_mig") -> LogicNetwork:
    """Emit a MIG as a MAJ/NOT gate-level network (POs keep their names)."""
    network = LogicNetwork(name)
    signal_of: dict[int, str] = {}
    for pi_name in mig.inputs:
        network.add_input(pi_name)
        signal_of[mig.input_literal(pi_name) >> 1] = pi_name

    counter = [0]
    inverter_of: dict[str, str] = {}
    output_names = {po_name for po_name, _ in mig.outputs}
    constant_one: list[str] = []

    def fresh(stem: str) -> str:
        counter[0] += 1
        candidate = f"{stem}{counter[0]}"
        while network.has_signal(candidate) or candidate in output_names:
            counter[0] += 1
            candidate = f"{stem}{counter[0]}"
        return candidate

    def literal_signal(literal: int) -> str:
        node = literal >> 1
        if node == 0:
            if not constant_one:
                constant_one.append(network.add_const(fresh("const"), True))
            base = constant_one[0]
        else:
            base = signal_of[node]
        if literal & 1 == 0:
            return base
        existing = inverter_of.get(base)
        if existing is None:
            existing = network.add_not(fresh("inv"), base)
            inverter_of[base] = existing
        return existing

    for node in mig.reachable_majs():
        a, b, c = mig.fanins(node)
        signal_of[node] = network.add_maj(
            fresh("maj"), literal_signal(a), literal_signal(b), literal_signal(c)
        )

    for po_name, literal in mig.outputs:
        node = literal >> 1
        if node == 0:
            network.add_const(po_name, literal == Mig.ONE)
        elif literal & 1:
            network.add_not(po_name, signal_of[node])
        else:
            network.add_buf(po_name, signal_of[node])
        network.add_output(po_name)
    return network
