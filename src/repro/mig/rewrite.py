"""MIG algebraic rewriting (the Ω axioms of the MIG papers).

The BDS-MAJ authors' follow-up work defines a sound and complete axiom
system for majority logic; this module implements the two transforms
that matter for optimization and applies them greedily:

* **Ω.M (majority)** — ``Maj(x, x, z) = x`` and ``Maj(x, x', z) = z``;
  applied at construction time by :class:`~repro.mig.mig.Mig`, and
  again during rewriting when substitutions create new opportunities.
* **Ω.A (associativity)** — ``Maj(x, u, Maj(y, u, z)) =
  Maj(z, u, Maj(y, u, x))``: swaps a variable on the critical path with
  one two levels down, the basic depth-reduction move.

:func:`rewrite_depth` walks the critical path top-down and applies Ω.A
whenever it shortens the local cone; :func:`rewrite_size` re-runs the
construction folds (a cheap "reliteralization" pass).  Both preserve
the function, which the tests check exhaustively on small MIGs.
"""

from __future__ import annotations

from .mig import Mig


def rewrite_size(mig: Mig) -> Mig:
    """Rebuild the MIG through the canonical constructor; substitution
    chains from previous rewrites get re-folded (Ω.M) and re-strashed."""
    return mig.cleanup()


def rewrite_depth(mig: Mig, passes: int = 2) -> Mig:
    """Greedy depth-oriented rewriting with the associativity axiom."""
    current = mig.cleanup()
    for _ in range(passes):
        candidate = _one_depth_pass(current)
        if candidate.depth() >= current.depth():
            return current
        current = candidate
    return current


def _one_depth_pass(mig: Mig) -> Mig:
    fresh = Mig()
    mapping: dict[int, int] = {0: Mig.ONE}
    level: dict[int, int] = {0: 0}
    for name in mig.inputs:
        literal = fresh.add_input(name)
        mapping[mig.input_literal(name) >> 1] = literal
        level[literal >> 1] = 0

    def literal_level(literal: int) -> int:
        return level.get(literal >> 1, 0)

    def build(a: int, b: int, c: int) -> int:
        result = fresh.maj(a, b, c)
        node = result >> 1
        if fresh.is_maj(node) and node not in level:
            children = fresh.fanins(node)
            level[node] = 1 + max(literal_level(child) for child in children)
        return result

    for node in mig.reachable_majs():
        children = [mapping[f >> 1] ^ (f & 1) for f in mig.fanins(node)]
        children.sort(key=literal_level, reverse=True)
        deep, mid, shallow = children
        rewritten = None
        # Omega.A: if the deepest child is itself a MAJ sharing a child
        # with this node, swap the late arrival downward:
        #   Maj(x, u, Maj(y, u, z)) = Maj(z, u, Maj(y, u, x))
        deep_node = deep >> 1
        if (
            deep & 1 == 0
            and fresh.is_maj(deep_node)
            and literal_level(deep) > max(literal_level(mid), literal_level(shallow))
        ):
            inner = fresh.fanins(deep_node)
            for u in (mid, shallow):
                if u in inner:
                    x = mid if u is shallow else shallow
                    rest = [lit for lit in inner if lit != u]
                    if len(rest) == 2:
                        y, z = sorted(rest, key=literal_level)
                        # Move the *shallow* outer literal x inside and
                        # the *deep* inner literal z outside.
                        if literal_level(z) > literal_level(x):
                            inner_new = build(y, u, x)
                            rewritten = build(z, u, inner_new)
                    break
        mapping[node] = rewritten if rewritten is not None else build(deep, mid, shallow)

    for name, literal in mig.outputs:
        fresh.add_output(name, mapping[literal >> 1] ^ (literal & 1))
    return fresh.cleanup()


def depth_size_report(mig: Mig) -> dict[str, int]:
    """Convenience metrics bundle used by examples and benches."""
    return {"size": mig.size(), "depth": mig.depth()}
