"""Majority-Inverter Graphs: the extension the paper's future work
seeded (MAJ/INV-only logic representation with algebraic rewriting)."""

from .convert import mig_to_network, network_to_mig, trees_to_mig
from .mig import Mig
from .rewrite import depth_size_report, rewrite_depth, rewrite_size

__all__ = [
    "Mig",
    "depth_size_report",
    "mig_to_network",
    "network_to_mig",
    "rewrite_depth",
    "rewrite_size",
    "trees_to_mig",
]
