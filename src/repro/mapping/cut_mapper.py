"""Cut-based Boolean-matching technology mapper.

A second mapper (the default one in :mod:`repro.mapping.mapper` is
structural): the subject network is strashed into an AIG, k-feasible
cuts are enumerated, each cut's truth table is Boolean-matched against
the library cells (all input permutations, input phases and output
phases — inverters priced in), and a cover is selected greedily by
*area flow* — the classic DAG-mapping recipe of ABC-style mappers.

It is intentionally opt-in: the paper's story has the *standard* mapper
hiding MAJ structure, and indeed this mapper only discovers MAJ3 cells
when a cut function happens to be a majority — without BDS-MAJ's
decomposition that opportunity rarely survives strashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from ..aig import Aig, enumerate_cuts, network_to_aig
from ..aig.cuts import cut_truth_table
from ..network import LogicNetwork
from .library import Cell, CellLibrary, cmos22_library
from .mapper import MappedCircuit, MappingError

#: Cell function -> truth table over its declared inputs (LSB-first).
_CELL_TABLES = {
    "inv": 0b01,
    "nand2": 0b0111,
    "nor2": 0b0001,
    "xor2": 0b0110,
    "xnor2": 0b1001,
    "maj3": 0b11101000,
}


@dataclass(frozen=True)
class _Match:
    """One way to realize a truth table: ``cell`` with leaf ``i`` (cut
    order) feeding pin ``pin_of[i]``, with per-leaf input inversion and
    optional output inversion."""

    cell: Cell
    pin_of: tuple[int, ...]
    input_inverted: tuple[bool, ...]
    output_inverted: bool
    extra_inverters: int


def _permute_phase_table(
    table: int, pin_of: tuple[int, ...], phases: tuple[bool, ...], arity: int
) -> int:
    """Truth table over cut leaves when leaf i (possibly inverted)
    drives cell pin ``pin_of[i]``."""
    size = 1 << arity
    out = 0
    for minterm in range(size):
        pin_minterm = 0
        for leaf in range(arity):
            value = minterm >> leaf & 1
            if phases[leaf]:
                value ^= 1
            if value:
                pin_minterm |= 1 << pin_of[leaf]
        if table >> pin_minterm & 1:
            out |= 1 << minterm
    return out


def _build_match_tables(library: CellLibrary) -> dict[int, dict[int, _Match]]:
    """arity -> (cut truth table -> cheapest match)."""
    inv_area = library.cell("inv").area if library.has("inv") else 0.0
    result: dict[int, dict[int, _Match]] = {}
    for function, table in _CELL_TABLES.items():
        if not library.has(function):
            continue
        cell = library.cell(function)
        arity = cell.num_inputs
        bucket = result.setdefault(arity, {})
        for pin_of in permutations(range(arity)):
            for phase_mask in range(1 << arity):
                phases = tuple(bool(phase_mask >> i & 1) for i in range(arity))
                realized = _permute_phase_table(table, pin_of, phases, arity)
                for output_inverted in (False, True):
                    final = realized
                    if output_inverted:
                        final ^= (1 << (1 << arity)) - 1
                    inverters = sum(phases) + output_inverted
                    match = _Match(cell, pin_of, phases, output_inverted, inverters)
                    existing = bucket.get(final)
                    if existing is None or _match_cost(match, inv_area) < _match_cost(
                        existing, inv_area
                    ):
                        bucket[final] = match
    return result


def _match_cost(match: _Match, inv_area: float) -> float:
    return match.cell.area + inv_area * match.extra_inverters


def cut_map_network(
    network: LogicNetwork, library: CellLibrary | None = None, k: int = 3
) -> MappedCircuit:
    """Map ``network`` by AIG cut enumeration + Boolean matching."""
    if library is None:
        library = cmos22_library()
    for required in ("inv", "nand2"):
        if not library.has(required):
            raise MappingError(f"cut mapper requires an {required!r} cell")
    match_tables = _build_match_tables(library)
    inv_cell = library.cell("inv")

    aig = network_to_aig(network).cleanup()
    cuts = enumerate_cuts(aig, k=k, max_cuts_per_node=8)
    refs = aig.reference_counts()

    # ------------------------------------------------------------------
    # Phase 1: choose the best (cut, match) per node by area flow.
    # ------------------------------------------------------------------
    area_flow: dict[int, float] = {0: 0.0}
    for name in aig.inputs:
        area_flow[aig.input_literal(name) >> 1] = 0.0
    chosen: dict[int, tuple[tuple[int, ...], _Match]] = {}

    for node in aig.reachable_ands():
        best_cost = None
        best = None
        for cut in cuts.get(node, ()):
            if cut == (node,):
                continue
            bucket = match_tables.get(len(cut))
            if not bucket:
                continue
            match = bucket.get(cut_truth_table(aig, node, cut))
            if match is None:
                continue
            flow = _match_cost(match, inv_cell.area)
            for leaf in cut:
                flow += area_flow.get(leaf, 0.0) / max(refs.get(leaf, 1), 1)
            if best_cost is None or flow < best_cost:
                best_cost = flow
                best = (cut, match)
        if best is None:
            raise MappingError(
                f"no library match for node {node} (the direct 2-cut "
                "should always match — library too small?)"
            )
        chosen[node] = best
        area_flow[node] = best_cost

    # ------------------------------------------------------------------
    # Phase 2: cover from the outputs, materialize cells.
    # ------------------------------------------------------------------
    mapped = LogicNetwork(f"{network.name}_cutmapped")
    for name in aig.inputs:
        mapped.add_input(name)
    cell_of: dict[str, Cell] = {}
    signal_of: dict[int, str] = {}
    inverter_of: dict[str, str] = {}
    counter = [0]
    output_names = {name for name, _ in aig.outputs}
    pi_signal = {aig.input_literal(n) >> 1: n for n in aig.inputs}

    covers = {
        "inv": (("0",), False),
        "nand2": (("11",), True),
        "nor2": (("1-", "-1"), True),
        "xor2": (("10", "01"), False),
        "xnor2": (("11", "00"), False),
        "maj3": (("11-", "1-1", "-11"), False),
    }

    def fresh(stem: str) -> str:
        counter[0] += 1
        candidate = f"{stem}{counter[0]}"
        while mapped.has_signal(candidate) or candidate in output_names:
            counter[0] += 1
            candidate = f"{stem}{counter[0]}"
        return candidate

    constant_nodes: dict[bool, str] = {}

    def constant_signal(value: bool) -> str:
        cached = constant_nodes.get(value)
        if cached is None:
            cached = mapped.add_const(fresh("tie"), value)
            cell_of[cached] = library.cell("tie1" if value else "tie0")
            constant_nodes[value] = cached
        return cached

    def inverted_signal(base: str) -> str:
        cached = inverter_of.get(base)
        if cached is None:
            cached = mapped.add_not(fresh("inv"), base)
            cell_of[cached] = inv_cell
            inverter_of[base] = cached
        return cached

    def leaf_signal(leaf: int) -> str:
        if leaf == 0:
            return constant_signal(True)
        if leaf in pi_signal:
            return pi_signal[leaf]
        return signal_of[leaf]

    # Determine which nodes the cover actually uses.
    used: set[int] = set()
    stack = [literal >> 1 for _, literal in aig.outputs if aig.is_and(literal >> 1)]
    while stack:
        node = stack.pop()
        if node in used:
            continue
        used.add(node)
        cut, _ = chosen[node]
        stack.extend(leaf for leaf in cut if aig.is_and(leaf))

    for node in aig.reachable_ands():
        if node not in used:
            continue
        cut, match = chosen[node]
        pins: list[str | None] = [None] * len(cut)
        for position, leaf in enumerate(cut):
            signal = leaf_signal(leaf)
            if match.input_inverted[position]:
                signal = inverted_signal(signal)
            pins[match.pin_of[position]] = signal
        cover, cover_inverted = covers[match.cell.function]
        gate = mapped.add_node(fresh("g"), tuple(pins), cover, cover_inverted)
        cell_of[gate] = match.cell
        signal_of[node] = inverted_signal(gate) if match.output_inverted else gate

    for po_name, literal in aig.outputs:
        node = literal >> 1
        if node == 0:
            source = constant_signal(literal == Aig.ONE)
            if literal & 1:
                source = constant_signal(False)
        else:
            source = leaf_signal(node)
            if literal & 1:
                source = inverted_signal(source)
        mapped.add_node(po_name, (source,), ("1",))
        cell_of[po_name] = Cell("WIRE", "wire", 1, 0.0, 0.0, 0.0)
        mapped.add_output(po_name)

    mapped.sweep_dangling()
    cell_of = {n: c for n, c in cell_of.items() if mapped.has_signal(n)}
    return MappedCircuit(mapped, cell_of, library)
