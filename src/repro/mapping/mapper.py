"""Technology mapping onto the 6-cell library (Section V.B.1).

The paper maps in two steps: MAJ, XOR and XNOR nodes are *directly
assigned* to their cells (to preserve structures a conventional mapper
would hide), then the AND/OR/INV remainder is covered with NAND2, NOR2
and INV.  This module implements that as a polarity-aware structural
mapper:

* every gate node gets a two-polarity cost estimate (dynamic program
  over the DAG: an AND is either ``INV(NAND(x,y))`` or ``NOR(x',y')``,
  an OR either ``INV(NOR(x,y))`` or ``NAND(x',y')``, XOR/XNOR and the
  self-dual MAJ absorb polarities for free);
* the cheaper implementation is materialized top-down with structural
  hashing, so shared logic and shared inverters are emitted once.

Gates without a matching cell (e.g. XOR under the NAND-only ablation
library, MUX, or raw SOP nodes) are pre-expanded into AND/OR/NOT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network import LogicNetwork, NetworkError, Node
from .library import Cell, CellLibrary, cmos22_library

#: Internal polarity markers.
POS, NEG = 0, 1


class MappingError(NetworkError):
    """Raised when a network cannot be mapped onto the library."""


# ----------------------------------------------------------------------
# Gate classification
# ----------------------------------------------------------------------
#: Canonical covers for 1- and 2-input gates and the 3-input MAJ/MUX.
def classify_gate(node: Node) -> tuple[str, bool, tuple[str, ...]]:
    """Classify a node as ``(base_kind, output_inverted, fanins)``.

    ``base_kind`` is one of ``const0 const1 buf and or xor maj mux
    sop``; NAND/NOR/XNOR/NOT are folded into their base kind with
    ``output_inverted`` set (and the ``inverted`` cover flag handled).
    ``sop`` marks anything that needs pre-expansion.
    """
    rows = frozenset(node.cover)
    inverted = node.inverted
    arity = len(node.fanins)
    if arity == 0:
        value = bool(rows) ^ inverted
        return ("const1" if value else "const0", False, ())
    if arity == 1:
        if rows == {"1"}:
            return "buf", inverted, node.fanins
        if rows == {"0"}:
            return "buf", not inverted, node.fanins
        value = bool(rows == {"1", "0"} or rows == {"-"}) ^ inverted
        return ("const1" if value else "const0", False, ())
    if arity == 2:
        table = {
            frozenset({"11"}): ("and", False, node.fanins),
            frozenset({"1-", "-1"}): ("or", False, node.fanins),
            frozenset({"00"}): ("or", True, node.fanins),
            frozenset({"0-", "-0"}): ("and", True, node.fanins),
            frozenset({"10", "01"}): ("xor", False, node.fanins),
            frozenset({"11", "00"}): ("xor", True, node.fanins),
            frozenset({"10"}): ("andnot", False, node.fanins),
            frozenset({"01"}): ("notand", False, node.fanins),
        }
        entry = table.get(rows)
        if entry is not None:
            kind, out_inv, fanins = entry
            return kind, out_inv ^ inverted, fanins
        return "sop", inverted, node.fanins
    if arity == 3:
        if rows == {"11-", "1-1", "-11"}:
            return "maj", inverted, node.fanins
        if rows == {"11-", "0-1"}:
            return "mux", inverted, node.fanins
        return "sop", inverted, node.fanins
    return "sop", inverted, node.fanins


# ----------------------------------------------------------------------
# Pre-expansion of unmappable nodes
# ----------------------------------------------------------------------
def expand_for_library(network: LogicNetwork, library: CellLibrary) -> LogicNetwork:
    """Rewrite ``network`` so every node is a gate the mapper handles
    with the given library: SOP and MUX nodes become AND/OR/NOT trees,
    XOR/XNOR/MAJ are expanded when the library lacks their cells."""
    result = LogicNetwork(network.name)
    for name in network.inputs:
        result.add_input(name)
    counter = [0]

    def fresh(stem: str) -> str:
        counter[0] += 1
        return f"__map{counter[0]}_{stem}"

    def emit_not(source: str) -> str:
        name = fresh("n")
        result.add_not(name, source)
        return name

    def emit_and(left: str, right: str) -> str:
        name = fresh("a")
        result.add_and(name, left, right)
        return name

    def emit_or(left: str, right: str) -> str:
        name = fresh("o")
        result.add_or(name, left, right)
        return name

    def expand_row(row: str, fanins: tuple[str, ...]) -> str | None:
        literals: list[str] = []
        for ch, fanin in zip(row, fanins):
            if ch == "1":
                literals.append(fanin)
            elif ch == "0":
                literals.append(emit_not(fanin))
        if not literals:
            return None  # tautological row
        while len(literals) > 1:
            literals = [
                emit_and(literals[i], literals[i + 1])
                for i in range(0, len(literals) - 1, 2)
            ] + ([literals[-1]] if len(literals) % 2 else [])
        return literals[0]

    for name in network.topological_order():
        node = network.node(name)
        kind, out_inv, fanins = classify_gate(node)
        keep_as_is = (
            kind in ("const0", "const1", "buf", "and", "or", "andnot", "notand")
            or (kind == "xor" and library.has("xor2"))
            or (kind == "maj" and library.has("maj3"))
        )
        if keep_as_is:
            result.add_node(name, node.fanins, node.cover, node.inverted)
            continue
        # Expand into AND/OR/NOT gates, ending in a node named ``name``.
        if kind == "mux":
            select, when_true, when_false = fanins
            then_part = emit_and(select, when_true)
            else_part = emit_and(emit_not(select), when_false)
            result.add_node(
                name, (then_part, else_part), ("1-", "-1"), inverted=out_inv
            )
            continue
        if kind == "xor":
            left, right = fanins
            then_part = emit_and(left, emit_not(right))
            else_part = emit_and(emit_not(left), right)
            result.add_node(
                name, (then_part, else_part), ("1-", "-1"), inverted=out_inv
            )
            continue
        if kind == "maj":
            a, b, c = fanins
            ab = emit_and(a, b)
            ac = emit_and(a, c)
            bc = emit_and(b, c)
            result.add_node(
                name, (emit_or(ab, ac), bc), ("1-", "-1"), inverted=out_inv
            )
            continue
        # General SOP.
        terms = [expand_row(row, node.fanins) for row in node.cover]
        if any(term is None for term in terms):
            result.add_const(name, not node.inverted)
            continue
        if not terms:
            result.add_const(name, node.inverted)
            continue
        while len(terms) > 1:
            terms = [
                emit_or(terms[i], terms[i + 1])
                for i in range(0, len(terms) - 1, 2)
            ] + ([terms[-1]] if len(terms) % 2 else [])
        result.add_node(name, (terms[0],), ("0",) if node.inverted else ("1",))

    for output in network.outputs:
        result.add_output(output)
    result.sweep_dangling()
    return result


# ----------------------------------------------------------------------
# The mapper proper
# ----------------------------------------------------------------------
@dataclass
class MappedCircuit:
    """A mapped netlist plus its cell bindings."""

    network: LogicNetwork
    cell_of: dict[str, Cell]
    library: CellLibrary

    @property
    def gate_count(self) -> int:
        """Number of placed cells (tie/wire pseudo-cells excluded)."""
        return sum(
            1 for cell in self.cell_of.values() if cell.function not in ("tie0", "tie1", "wire")
        )

    @property
    def area(self) -> float:
        return sum(cell.area for cell in self.cell_of.values())

    def cell_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for cell in self.cell_of.values():
            histogram[cell.function] = histogram.get(cell.function, 0) + 1
        return histogram


#: Implementation alternatives per (base kind, requested polarity):
#: list of (cell function, child polarities, invert after).
_IMPLEMENTATIONS: dict[tuple[str, int], list[tuple[str, tuple[int, ...], bool]]] = {
    ("and", POS): [("nor2", (NEG, NEG), False), ("nand2", (POS, POS), True)],
    ("and", NEG): [("nand2", (POS, POS), False), ("nor2", (NEG, NEG), True)],
    ("or", POS): [("nand2", (NEG, NEG), False), ("nor2", (POS, POS), True)],
    ("or", NEG): [("nor2", (POS, POS), False), ("nand2", (NEG, NEG), True)],
    # andnot(a, b) = a · b'
    ("andnot", POS): [("nor2", (NEG, POS), False), ("nand2", (POS, NEG), True)],
    ("andnot", NEG): [("nand2", (POS, NEG), False), ("nor2", (NEG, POS), True)],
    ("notand", POS): [("nor2", (POS, NEG), False), ("nand2", (NEG, POS), True)],
    ("notand", NEG): [("nand2", (NEG, POS), False), ("nor2", (POS, NEG), True)],
    ("xor", POS): [
        ("xor2", (POS, POS), False),
        ("xor2", (NEG, NEG), False),
        ("xnor2", (POS, NEG), False),
        ("xnor2", (NEG, POS), False),
    ],
    ("xor", NEG): [
        ("xnor2", (POS, POS), False),
        ("xnor2", (NEG, NEG), False),
        ("xor2", (POS, NEG), False),
        ("xor2", (NEG, POS), False),
    ],
    ("maj", POS): [("maj3", (POS, POS, POS), False), ("maj3", (NEG, NEG, NEG), True)],
    ("maj", NEG): [("maj3", (NEG, NEG, NEG), False), ("maj3", (POS, POS, POS), True)],
}


def map_network(
    network: LogicNetwork, library: CellLibrary | None = None
) -> MappedCircuit:
    """Map a gate-level network onto ``library`` (default: the paper's
    cmos22 library)."""
    if library is None:
        library = cmos22_library()
    prepared = expand_for_library(network, library)
    inv_area = library.cell("inv").area

    kinds: dict[str, tuple[str, bool, tuple[str, ...]]] = {}
    for name in prepared.topological_order():
        kinds[name] = classify_gate(prepared.node(name))

    # ------------------------------------------------------------------
    # Phase 1: two-polarity cost estimation (tree DP over the DAG).
    # ------------------------------------------------------------------
    cost: dict[str, tuple[float, float]] = {}
    for name in prepared.inputs:
        cost[name] = (0.0, inv_area)

    def child_cost(signal: str, polarity: int) -> float:
        return cost[signal][polarity]

    for name in prepared.topological_order():
        kind, out_inv, fanins = kinds[name]
        if kind in ("const0", "const1"):
            cost[name] = (0.0, 0.0)
            continue
        if kind == "buf":
            base = cost[fanins[0]]
            cost[name] = (base[out_inv], base[1 - out_inv])
            continue
        per_polarity: list[float] = []
        for want in (POS, NEG):
            base_want = want ^ out_inv
            best = float("inf")
            for cell_fn, child_pols, inv_after in _IMPLEMENTATIONS[(kind, base_want)]:
                if not library.has(cell_fn):
                    continue
                total = library.cell(cell_fn).area + (inv_area if inv_after else 0.0)
                total += sum(
                    child_cost(f, p) for f, p in zip(fanins, child_pols)
                )
                if total < best:
                    best = total
            if best == float("inf"):
                raise MappingError(f"no implementation for {kind!r} in {library.name!r}")
            per_polarity.append(best)
        cost[name] = (per_polarity[0], per_polarity[1])

    # ------------------------------------------------------------------
    # Phase 2: materialization with structural hashing.
    # ------------------------------------------------------------------
    mapped = LogicNetwork(f"{network.name}_mapped")
    for name in prepared.inputs:
        mapped.add_input(name)
    cell_of: dict[str, Cell] = {}
    intern: dict[tuple[str, tuple[str, ...]], str] = {}
    counter = [0]
    output_names = set(prepared.outputs)

    covers = {
        "inv": (("0",), False),
        "nand2": (("11",), True),
        "nor2": (("1-", "-1"), True),
        "xor2": (("10", "01"), False),
        "xnor2": (("11", "00"), False),
        "maj3": (("11-", "1-1", "-11"), False),
    }

    def place_cell(cell_fn: str, fanins: tuple[str, ...], preferred: str | None) -> str:
        key = (cell_fn, fanins)
        existing = intern.get(key)
        if existing is not None and preferred is None:
            return existing
        if existing is not None and preferred is not None:
            # An output needs its own named node: emit an alias wire.
            mapped.add_node(preferred, (existing,), ("1",))
            cell_of[preferred] = Cell("WIRE", "wire", 1, 0.0, 0.0, 0.0)
            return preferred
        if preferred is not None:
            name = preferred
        else:
            counter[0] += 1
            name = f"g{counter[0]}"
        cover, inverted = covers[cell_fn]
        mapped.add_node(name, fanins, cover, inverted)
        cell_of[name] = library.cell(cell_fn)
        intern.setdefault(key, name)
        return name

    def place_const(value: bool, preferred: str | None) -> str:
        cell_fn = "tie1" if value else "tie0"
        if preferred is not None:
            name = preferred
        else:
            existing = intern.get((cell_fn, ()))
            if existing is not None:
                return existing
            counter[0] += 1
            name = f"g{counter[0]}"
        mapped.add_const(name, value)
        cell_of[name] = library.cell(cell_fn)
        if preferred is None:
            intern[(cell_fn, ())] = name
        return name

    def choose_impl(kind: str, base_want: int, fanins: tuple[str, ...]):
        best = None
        best_cost = float("inf")
        for impl in _IMPLEMENTATIONS[(kind, base_want)]:
            cell_fn, child_pols, inv_after = impl
            if not library.has(cell_fn):
                continue
            total = library.cell(cell_fn).area + (inv_area if inv_after else 0.0)
            total += sum(cost[f][p] for f, p in zip(fanins, child_pols))
            if total < best_cost:
                best, best_cost = impl, total
        assert best is not None  # cost phase already verified feasibility
        return best

    # Phase 2a (iterative; deep netlists exceed the recursion limit):
    # walk consumers-to-producers collecting which polarity of which
    # signal must exist, fixing each node's implementation choice.
    order = prepared.topological_order()
    demands: dict[str, set[int]] = {name: set() for name in order}
    for name in prepared.inputs:
        demands[name] = set()
    for output in prepared.outputs:
        demands[output].add(POS)
    chosen: dict[tuple[str, int], tuple[str, tuple[int, ...], bool]] = {}
    for name in reversed(order):
        kind, out_inv, fanins = kinds[name]
        for polarity in tuple(demands[name]):
            if kind in ("const0", "const1"):
                continue
            if kind == "buf":
                demands[fanins[0]].add(polarity ^ out_inv)
                continue
            impl = choose_impl(kind, polarity ^ out_inv, fanins)
            chosen[(name, polarity)] = impl
            _, child_pols, _ = impl
            for fanin, child_pol in zip(fanins, child_pols):
                demands[fanin].add(child_pol)

    # Phase 2b: build bottom-up.  ``built`` maps (signal, polarity) to
    # the mapped net computing it.
    built: dict[tuple[str, int], str] = {}
    for name in prepared.inputs:
        built[(name, POS)] = name
        if NEG in demands[name]:
            built[(name, NEG)] = place_cell("inv", (name,), None)
    for name in order:
        kind, out_inv, fanins = kinds[name]
        for polarity in sorted(demands[name]):
            if kind in ("const0", "const1"):
                value = (kind == "const1") ^ bool(polarity)
                built[(name, polarity)] = place_const(value, None)
                continue
            if kind == "buf":
                built[(name, polarity)] = built[(fanins[0], polarity ^ out_inv)]
                continue
            cell_fn, child_pols, inv_after = chosen[(name, polarity)]
            children = tuple(
                built[(fanin, child_pol)]
                for fanin, child_pol in zip(fanins, child_pols)
            )
            # Name the cell after the signal when it is a primary output
            # materialized positively (keeps the netlist readable and
            # avoids alias wires for the common case).
            preferred = None
            if (
                polarity == POS
                and name in output_names
                and not mapped.has_signal(name)
                and not inv_after
            ):
                preferred = name
            result = place_cell(cell_fn, children, preferred)
            if inv_after:
                inv_preferred = None
                if (
                    polarity == POS
                    and name in output_names
                    and not mapped.has_signal(name)
                ):
                    inv_preferred = name
                result = place_cell("inv", (result,), inv_preferred)
            built[(name, polarity)] = result

    for output in prepared.outputs:
        if prepared.is_input(output):
            # Input fed straight to an output: zero-cost wire.
            mapped.add_output(output)
            continue
        signal = built[(output, POS)]
        if signal != output:
            mapped.add_node(output, (signal,), ("1",))
            cell_of[output] = Cell("WIRE", "wire", 1, 0.0, 0.0, 0.0)
        mapped.add_output(output)

    mapped.sweep_dangling()
    cell_of = {name: cell for name, cell in cell_of.items() if mapped.has_signal(name)}
    return MappedCircuit(mapped, cell_of, library)
