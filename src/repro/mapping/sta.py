"""Static timing analysis and reporting on mapped circuits.

Implements the delay model of the library characterization: a cell's
output arrival is the latest input arrival plus the cell's intrinsic
delay plus a per-fanout load term.  Produces the three numbers Table II
reports per circuit: area (µm²), gate count and delay (ns).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapper import MappedCircuit


@dataclass(frozen=True)
class TimingReport:
    """Table-II style metrics of one mapped circuit."""

    area: float
    gate_count: int
    delay: float
    critical_path: tuple[str, ...]
    depth: int

    def row(self) -> tuple[float, int, float]:
        return (round(self.area, 2), self.gate_count, round(self.delay, 3))


def analyze(mapped: MappedCircuit) -> TimingReport:
    """Compute arrival times and the critical path of ``mapped``."""
    network = mapped.network
    fanouts = network.fanouts()
    arrival: dict[str, float] = {name: 0.0 for name in network.inputs}
    depth: dict[str, int] = {name: 0 for name in network.inputs}
    predecessor: dict[str, str | None] = {name: None for name in network.inputs}

    for name in network.topological_order():
        node = network.node(name)
        cell = mapped.cell_of.get(name)
        if cell is None or not node.fanins:
            arrival[name] = 0.0
            depth[name] = 0
            predecessor[name] = None
            continue
        worst_signal = max(node.fanins, key=lambda f: arrival[f])
        load = len(fanouts.get(name, ()))
        arrival[name] = arrival[worst_signal] + cell.delay + cell.load_delay * load
        depth[name] = depth[worst_signal] + (0 if cell.function == "wire" else 1)
        predecessor[name] = worst_signal

    if network.outputs:
        worst_output = max(network.outputs, key=lambda o: arrival.get(o, 0.0))
        delay = arrival.get(worst_output, 0.0)
        path = _trace_path(predecessor, worst_output)
        max_depth = max(depth.get(o, 0) for o in network.outputs)
    else:
        delay, path, max_depth = 0.0, (), 0

    return TimingReport(
        area=mapped.area,
        gate_count=mapped.gate_count,
        delay=delay,
        critical_path=path,
        depth=max_depth,
    )


def _trace_path(predecessor: dict[str, str | None], end: str) -> tuple[str, ...]:
    path = [end]
    current = predecessor.get(end)
    while current is not None:
        path.append(current)
        current = predecessor.get(current)
    return tuple(reversed(path))
