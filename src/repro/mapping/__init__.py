"""Technology mapping: the 22 nm cell library, the polarity-aware
structural mapper with MAJ/XOR/XNOR direct assignment, and STA."""

from .library import Cell, CellLibrary, cmos22_library, nand_only_library
from .cut_mapper import cut_map_network
from .mapper import MappedCircuit, MappingError, classify_gate, expand_for_library, map_network
from .sta import TimingReport, analyze

__all__ = [
    "Cell",
    "CellLibrary",
    "MappedCircuit",
    "MappingError",
    "TimingReport",
    "analyze",
    "classify_gate",
    "cmos22_library",
    "cut_map_network",
    "expand_for_library",
    "map_network",
    "nand_only_library",
]
