"""The 22 nm standard-cell library of Section V.B.1.

The paper characterizes a six-cell library — MAJ-3, XOR-2, XNOR-2,
NAND-2, NOR-2 and INV — for the CMOS 22 nm technology node using the
Predictive Technology Model [22].  SPICE characterization is outside
this reproduction's scope, so the table below carries static area and
delay values with PTM-plausible magnitudes and, more importantly,
*correct relative ordering* (INV < NAND < NOR < XOR/XNOR < MAJ in both
area and delay; NOR slower than NAND due to stacked PMOS).  Relative
flow-vs-flow results depend on gate counts and logic depth, which these
values preserve; absolute µm²/ns are calibration constants.

A light load model (delay grows per fanout) approximates the RC
behaviour the paper's characterization would capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cell:
    """One standard cell: logic function, area and timing."""

    name: str
    function: str  # inv | buf | nand2 | nor2 | xor2 | xnor2 | maj3 | tie0 | tie1
    num_inputs: int
    area: float  # um^2
    delay: float  # ns, intrinsic
    load_delay: float  # ns added per fanout


@dataclass
class CellLibrary:
    """A named collection of cells indexed by logic function."""

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        if cell.function in self.cells:
            raise ValueError(f"duplicate cell for function {cell.function!r}")
        self.cells[cell.function] = cell

    def cell(self, function: str) -> Cell:
        try:
            return self.cells[function]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no {function!r} cell") from None

    def has(self, function: str) -> bool:
        return function in self.cells

    @property
    def functions(self) -> tuple[str, ...]:
        return tuple(self.cells)


def cmos22_library() -> CellLibrary:
    """The paper's library: MAJ3, XOR2, XNOR2, NAND2, NOR2, INV
    (plus zero-cost tie cells for constant outputs)."""
    library = CellLibrary("cmos22")
    library.add(Cell("INV_X1", "inv", 1, area=0.065, delay=0.010, load_delay=0.0020))
    library.add(Cell("NAND2_X1", "nand2", 2, area=0.098, delay=0.016, load_delay=0.0022))
    library.add(Cell("NOR2_X1", "nor2", 2, area=0.098, delay=0.020, load_delay=0.0026))
    library.add(Cell("XOR2_X1", "xor2", 2, area=0.195, delay=0.030, load_delay=0.0028))
    library.add(Cell("XNOR2_X1", "xnor2", 2, area=0.195, delay=0.030, load_delay=0.0028))
    library.add(Cell("MAJ3_X1", "maj3", 3, area=0.260, delay=0.036, load_delay=0.0030))
    library.add(Cell("TIE0", "tie0", 0, area=0.0, delay=0.0, load_delay=0.0))
    library.add(Cell("TIE1", "tie1", 0, area=0.0, delay=0.0, load_delay=0.0))
    return library


def nand_only_library() -> CellLibrary:
    """An ablation library without XOR/XNOR/MAJ cells, used to measure
    how much the direct-assignment step of BDS-MAJ contributes."""
    library = CellLibrary("nand_only")
    base = cmos22_library()
    for function in ("inv", "nand2", "nor2", "tie0", "tie1"):
        library.add(base.cell(function))
    return library
