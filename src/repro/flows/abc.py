"""The ABC-like baseline flow: ``resyn2`` + structural mapping.

Matches the paper's baseline configuration "ABC resyn2 optimization
script and ABC mapper" (Section V.B.1).  Everything is strashed into an
AIG and optimized with the balance/rewrite/refactor script.  During
netlist emission the three-AND XOR pattern is recovered (ABC's Boolean
matcher does use the XOR2/XNOR2 library cells), but no MAJ matching is
attempted — majority structures stay hidden in the AND/INV mass, which
is exactly the gap the paper's direct assignment exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.library import CellLibrary
from ..network import LogicNetwork
from .common import FlowResult


@dataclass
class AbcFlowConfig:
    #: Use the short balance/rewrite/balance script instead of resyn2.
    quick: bool = False
    verify: bool = True
    library: CellLibrary | None = None


def abc_flow(network: LogicNetwork, config: AbcFlowConfig | None = None) -> FlowResult:
    """Compatibility shim over the ``"abc"`` pipeline in
    :mod:`repro.api` (``LoadInput -> Strash -> Rewrite -> Emit -> Map
    -> Verify``)."""
    from ..api import get_pipeline

    return get_pipeline("abc").run(network, config)
