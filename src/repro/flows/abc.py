"""The ABC-like baseline flow: ``resyn2`` + structural mapping.

Matches the paper's baseline configuration "ABC resyn2 optimization
script and ABC mapper" (Section V.B.1).  Everything is strashed into an
AIG and optimized with the balance/rewrite/refactor script.  During
netlist emission the three-AND XOR pattern is recovered (ABC's Boolean
matcher does use the XOR2/XNOR2 library cells), but no MAJ matching is
attempted — majority structures stay hidden in the AND/INV mass, which
is exactly the gap the paper's direct assignment exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aig import aig_to_network, network_to_aig, resyn2, resyn_quick
from ..mapping.library import CellLibrary
from ..network import LogicNetwork
from .common import FlowResult, Stopwatch, finish_flow


@dataclass
class AbcFlowConfig:
    #: Use the short balance/rewrite/balance script instead of resyn2.
    quick: bool = False
    verify: bool = True
    library: CellLibrary | None = None


def abc_flow(network: LogicNetwork, config: AbcFlowConfig | None = None) -> FlowResult:
    if config is None:
        config = AbcFlowConfig()
    with Stopwatch() as timer:
        aig = network_to_aig(network)
        optimized_aig = resyn_quick(aig) if config.quick else resyn2(aig)
        optimized = aig_to_network(optimized_aig, name=network.name, detect_xor=True)
    return finish_flow(
        "abc",
        network,
        optimized,
        timer.seconds,
        library=config.library,
        verify=config.verify,
    )
