"""The four synthesis flows compared in the paper's Section V.

.. note:: **Compatibility shim.**  Flow execution now lives in the
   composable pipeline API (:mod:`repro.api`): each flow is a stage
   composition registered in the default
   :class:`~repro.api.PipelineRegistry`, and the functions re-exported
   here (``bdsmaj_flow``, ``bdspga_flow``, ``abc_flow``, ``dc_flow``)
   plus the :data:`FLOWS` mapping are thin wrappers kept so existing
   callers and scripts keep working unchanged.  New code should prefer::

       from repro.api import get_pipeline
       result = get_pipeline("bds-maj").run(network)

   The building blocks (:func:`bds_optimize`, :func:`dc_optimize`,
   :func:`finish_flow`) remain first-class: they are the one-shot
   reference implementations the pipeline stages are tested against.
"""

from .abc import AbcFlowConfig, abc_flow
from .batch import (
    BATCH_FLOWS,
    BatchCancelled,
    BatchConfig,
    BatchReport,
    CircuitReport,
    WarmPoolManager,
    batch_pool,
    run_batch,
    synthesize_one,
)
from .bds import (
    REORDER_POLICIES,
    BdsFlowConfig,
    BdsTrace,
    bds_optimize,
    bdsmaj_flow,
    bdspga_flow,
    normalize_reorder_policy,
)
from .common import FlowResult, Stopwatch, finish_flow, map_and_analyze, verify_or_raise
from .dc import DcFlowConfig, dc_flow, dc_optimize

#: Flow registry in the paper's Table II column order.  Compatibility
#: shim over :func:`repro.api.get_pipeline` — the values are the
#: wrapper functions above, so ``FLOWS[name](network, config)`` keeps
#: its historical signature.
FLOWS = {
    "bds-maj": bdsmaj_flow,
    "bds-pga": bdspga_flow,
    "abc": abc_flow,
    "dc": dc_flow,
}

__all__ = [
    "BATCH_FLOWS",
    "FLOWS",
    "REORDER_POLICIES",
    "AbcFlowConfig",
    "BatchCancelled",
    "BatchConfig",
    "BatchReport",
    "BdsFlowConfig",
    "BdsTrace",
    "CircuitReport",
    "DcFlowConfig",
    "FlowResult",
    "Stopwatch",
    "WarmPoolManager",
    "abc_flow",
    "batch_pool",
    "bds_optimize",
    "bdsmaj_flow",
    "bdspga_flow",
    "dc_flow",
    "dc_optimize",
    "finish_flow",
    "map_and_analyze",
    "normalize_reorder_policy",
    "run_batch",
    "synthesize_one",
    "verify_or_raise",
]
