"""The four synthesis flows compared in the paper's Section V."""

from .abc import AbcFlowConfig, abc_flow
from .batch import (
    BATCH_FLOWS,
    BatchConfig,
    BatchReport,
    CircuitReport,
    run_batch,
    synthesize_one,
)
from .bds import BdsFlowConfig, BdsTrace, bds_optimize, bdsmaj_flow, bdspga_flow
from .common import FlowResult, Stopwatch, finish_flow
from .dc import DcFlowConfig, dc_flow, dc_optimize

#: Flow registry in the paper's Table II column order.
FLOWS = {
    "bds-maj": bdsmaj_flow,
    "bds-pga": bdspga_flow,
    "abc": abc_flow,
    "dc": dc_flow,
}

__all__ = [
    "BATCH_FLOWS",
    "FLOWS",
    "AbcFlowConfig",
    "BatchConfig",
    "BatchReport",
    "BdsFlowConfig",
    "BdsTrace",
    "CircuitReport",
    "DcFlowConfig",
    "FlowResult",
    "Stopwatch",
    "abc_flow",
    "bds_optimize",
    "bdsmaj_flow",
    "bdspga_flow",
    "dc_flow",
    "dc_optimize",
    "finish_flow",
    "run_batch",
    "synthesize_one",
]
