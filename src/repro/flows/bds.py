"""The BDS-MAJ and BDS-PGA synthesis flows (paper Figure 3).

Stages: network partitioning into supernodes (IV.A) → per-supernode
variable reordering and BDD decomposition with MAJ on top of the
dominator search (IV.B) → factoring trees with logic sharing (IV.C) →
gate netlist → technology mapping with MAJ/XOR/XNOR direct assignment
(V.B.1).

The BDS-PGA baseline is the identical flow with the majority
decomposition disabled — exactly the comparison Table I draws.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..bdd.manager import combine_cache_stats
from ..core import DecompositionEngine, EngineConfig, TreeBuilder
from ..core.emit import network_from_trees
from ..mapping.library import CellLibrary
from ..network import LogicNetwork, PartitionConfig, partition_with_bdds
from .common import FlowResult

#: Variable-reordering policies of the BDS flows (Section IV.B and the
#: dynamic-reordering subsystem on top of it):
#:
#: * ``"none"``    — no reordering at all (the ablation baseline);
#: * ``"once"``    — one in-place sifting pass per supernode between
#:   construction and decomposition (the published default);
#: * ``"converge"``— sifting passes repeated to a fixpoint
#:   (:meth:`BDD.sift_converge`);
#: * ``"dynamic"`` — growth-triggered sifting *during* BDD construction
#:   (CUDD-style doubling threshold) rescuing builds that would blow
#:   the node budget, plus the standard single pass before
#:   decomposition.
REORDER_POLICIES = ("none", "once", "converge", "dynamic")


def normalize_reorder_policy(value: object) -> str:
    """Coerce a reorder knob to a policy name.

    Booleans keep their historical meaning (``True`` → ``"once"``,
    ``False`` → ``"none"``) so pre-policy configs and the registered
    ``bds-maj-nosift`` ablation keep working unchanged.
    """
    if value is True:
        return "once"
    if value is False or value is None:
        return "none"
    if value not in REORDER_POLICIES:
        raise ValueError(
            f"unknown reorder policy {value!r} (known: {REORDER_POLICIES})"
        )
    return str(value)


def partition_config_for(
    partition: PartitionConfig, policy: str
) -> PartitionConfig:
    """The partition config a policy implies: ``dynamic`` arms
    construction-time reordering (on a copy — caller configs are never
    mutated); every other policy uses the config as given."""
    if policy == "dynamic" and not partition.dynamic_reorder:
        return dataclasses.replace(partition, dynamic_reorder=True)
    return partition


def reorder_supernode(mgr, root: int, policy: str):
    """The per-supernode reordering step a policy implies, shared by
    :func:`bds_optimize` and the pipeline's ``reorder`` stage so the
    two paths can never diverge.  Returns the
    :class:`~repro.bdd.SiftResult`, or ``None`` when the policy skips
    reordering.  ``"converge"`` repeats passes to a fixpoint; ``"once"``
    and ``"dynamic"`` run a single pass (dynamic already reordered
    during construction)."""
    if policy == "none":
        return None
    if policy == "converge":
        return mgr.sift_converge([root])
    return mgr.sift([root])


@dataclass
class BdsFlowConfig:
    """Flow-level knobs (defaults follow the paper's Section IV)."""

    enable_majority: bool = True
    partition: PartitionConfig = field(
        default_factory=lambda: PartitionConfig(max_support=10, max_bdd_nodes=220)
    )
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Variable-reordering policy (one of :data:`REORDER_POLICIES`;
    #: booleans are accepted for compatibility: ``True`` = ``"once"``,
    #: ``False`` = ``"none"``).  The in-place sifting engine is cheap
    #: enough to run on *every* supernode — there are no size guards.
    reorder: bool | str = True
    verify: bool = True
    library: CellLibrary | None = None

    def __post_init__(self) -> None:
        self.engine.enable_majority = self.enable_majority
        self.reorder = normalize_reorder_policy(self.reorder)


@dataclass
class BdsTrace:
    """Executed-stage trace (the Figure 3 reproduction prints this)."""

    supernodes: int = 0
    sifted: int = 0
    #: Growth-triggered reorders performed *during* BDD construction
    #: (``reorder="dynamic"`` only; not part of the serialized reports,
    #: whose schema the default policy keeps byte-identical).
    reorderings: int = 0
    majority_steps: int = 0
    and_or_steps: int = 0
    xor_steps: int = 0
    mux_steps: int = 0
    tree_nodes: int = 0
    #: Unified BDD operation-cache counters, summed over the supernode
    #: managers (construction + decomposition traffic; in-place sifting
    #: itself performs no cached operations).
    bdd_cache_hits: int = 0
    bdd_cache_misses: int = 0
    bdd_cache_evictions: int = 0

    def add_cache_stats(self, stats: dict[str, int | float]) -> None:
        self.bdd_cache_hits += int(stats["hits"])
        self.bdd_cache_misses += int(stats["misses"])
        self.bdd_cache_evictions += int(stats["evictions"])

    @property
    def bdd_cache_hit_rate(self) -> float:
        return float(self.cache_summary()["hit_rate"])

    def cache_summary(self) -> dict[str, int | float]:
        """The Table-I / batch-report cache columns."""
        return combine_cache_stats(
            [
                {
                    "hits": self.bdd_cache_hits,
                    "misses": self.bdd_cache_misses,
                    "evictions": self.bdd_cache_evictions,
                }
            ]
        )


def bds_optimize(
    network: LogicNetwork, config: BdsFlowConfig | None = None
) -> tuple[LogicNetwork, dict[str, int], BdsTrace]:
    """Run partitioning + decomposition + factoring-tree emission.

    Returns the decomposed gate network, the Table-I node counts and
    the stage trace.  This is the one-shot reference implementation of
    the pipeline's ``build-bdds -> reorder -> decompose -> rewrite``
    stages (:mod:`repro.api.stages`); the equivalence tests pin the two
    forms to bit-identical outputs.
    """
    if config is None:
        config = BdsFlowConfig()
    builder = TreeBuilder()
    trace = BdsTrace()
    roots: dict[str, int] = {}

    policy = normalize_reorder_policy(config.reorder)
    partitions = partition_with_bdds(
        network, partition_config_for(config.partition, policy)
    )
    for supernode, mgr, root in partitions:
        trace.supernodes += 1
        trace.reorderings += mgr.reorderings
        # In-place sifting: the manager and the root edge survive (so
        # do its cache counters, which the engine snapshot below
        # reports cumulatively).
        result = reorder_supernode(mgr, root, policy)
        if result is not None and result.changed:
            trace.sifted += 1
        engine = DecompositionEngine(mgr, builder, config.engine)
        roots[supernode.output] = engine.decompose(root)
        trace.add_cache_stats(engine.cache_report())
        trace.majority_steps += engine.stats.majority
        trace.and_or_steps += engine.stats.and_or
        trace.xor_steps += engine.stats.xor
        trace.mux_steps += engine.stats.mux

    counts = builder.count_ops(roots.values())
    trace.tree_nodes = sum(counts.values())
    decomposed = network_from_trees(
        builder,
        roots,
        inputs=list(network.inputs),
        outputs=list(network.outputs),
        name=network.name,
    )
    return decomposed, counts, trace


def bdsmaj_flow(network: LogicNetwork, config: BdsFlowConfig | None = None) -> FlowResult:
    """The paper's flow: BDS decomposition with majority logic.

    Compatibility shim over the ``"bds-maj"`` pipeline in
    :mod:`repro.api` (``LoadInput -> BuildBdds -> Reorder -> Decompose
    -> Rewrite -> Map -> Verify``); prefer
    ``get_pipeline("bds-maj").run(...)`` in new code.
    """
    from ..api import get_pipeline

    return get_pipeline("bds-maj").run(network, config)


def bdspga_flow(network: LogicNetwork, config: BdsFlowConfig | None = None) -> FlowResult:
    """The BDS-PGA baseline: same engine, majority disabled.

    Compatibility shim over the ``"bds-pga"`` pipeline in
    :mod:`repro.api`; a caller-provided config keeps being mutated to
    ``enable_majority=False`` (the historical contract).
    """
    from ..api import get_pipeline

    return get_pipeline("bds-pga").run(network, config)
