"""Shared flow infrastructure: result records and verification."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..mapping import MappedCircuit, TimingReport, analyze, map_network
from ..mapping.library import CellLibrary
from ..network import EquivalenceResult, LogicNetwork, check_equivalence


@dataclass
class FlowResult:
    """Everything a flow produces for one benchmark.

    ``node_counts`` holds the Table-I style decomposed-network node
    counts (AND/OR/XOR/XNOR/MAJ) where the flow defines them (the two
    BDD flows); ``optimize_seconds`` is the logic-optimization runtime
    the paper reports in Table I.
    """

    flow: str
    benchmark: str
    optimized: LogicNetwork
    mapped: MappedCircuit
    timing: TimingReport
    optimize_seconds: float
    node_counts: dict[str, int] = field(default_factory=dict)
    equivalence: EquivalenceResult | None = None
    #: Unified BDD operation-cache counters aggregated over the flow
    #: (hits/misses/evictions/hit_rate); empty for non-BDD flows.
    cache_stats: dict[str, int | float] = field(default_factory=dict)

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts.values())

    def table2_row(self) -> tuple[float, int, float]:
        """(area um^2, gate count, delay ns) as in Table II."""
        return self.timing.row()


def map_and_analyze(
    optimized: LogicNetwork, library: CellLibrary | None = None
) -> tuple[MappedCircuit, TimingReport]:
    """The mapping tail shared by every flow: technology map the
    optimized network and run STA on the result."""
    mapped = map_network(optimized, library)
    return mapped, analyze(mapped)


def verify_or_raise(
    flow_name: str,
    source: LogicNetwork,
    optimized: LogicNetwork,
    mapped: MappedCircuit,
) -> EquivalenceResult:
    """The verification rule shared by every flow: the optimized network
    AND the mapped netlist must both match the source.  Raises
    ``AssertionError`` on a counterexample (a synthesis flow that broke
    its circuit must never report success)."""
    equivalence = check_equivalence(source, optimized)
    if equivalence.equivalent:
        equivalence = check_equivalence(source, mapped.network)
    if not equivalence.equivalent:
        raise AssertionError(
            f"{flow_name} broke {source.name}: counterexample "
            f"{equivalence.counterexample}"
        )
    return equivalence


def finish_flow(
    flow_name: str,
    source: LogicNetwork,
    optimized: LogicNetwork,
    optimize_seconds: float,
    node_counts: dict[str, int] | None = None,
    library: CellLibrary | None = None,
    verify: bool = True,
    cache_stats: dict[str, int | float] | None = None,
) -> FlowResult:
    """Common tail of every flow: map, time, verify.

    This is the one-shot form; the stage pipelines in
    :mod:`repro.api` run the same :func:`map_and_analyze` /
    :func:`verify_or_raise` helpers as separate ``map`` and ``verify``
    stages.
    """
    mapped, timing = map_and_analyze(optimized, library)
    equivalence = verify_or_raise(flow_name, source, optimized, mapped) if verify else None
    return FlowResult(
        flow=flow_name,
        benchmark=source.name,
        optimized=optimized,
        mapped=mapped,
        timing=timing,
        optimize_seconds=optimize_seconds,
        node_counts=node_counts or {},
        equivalence=equivalence,
        cache_stats=cache_stats or {},
    )


class Stopwatch:
    """Tiny context helper for the optimization timers."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
