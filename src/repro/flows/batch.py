"""Parallel batch-synthesis service: whole benchmark suites in one call.

The paper's headline results (Tables I/II) are produced by running
BDS-MAJ over entire benchmark suites, so the reproduction needs a
throughput layer above the single-circuit flows.  :func:`run_batch`
fans circuits out across a :mod:`multiprocessing` worker pool — every
worker synthesizes its circuits with its own private
:class:`~repro.bdd.BDD` managers, so nothing is shared and nothing
needs locking — and folds the per-circuit results into one
:class:`BatchReport`.

Circuits come from the pluggable input layer (:mod:`repro.api.inputs`):
plain registry keys keep working, and any mix of
:class:`~repro.api.InputItem` descriptors or an
:class:`~repro.api.InputSource` (e.g. ``BlifGlobSource("out/*.blif")``)
is accepted.  Work is executed through the pipeline registry
(:mod:`repro.api.registry`): each circuit runs the optimize prefix of
its flow's pipeline, so every registered flow — including ``abc`` and
``dc`` — can be batched, not just the two BDD flows.

Determinism contract
--------------------
The serialized report (:meth:`BatchReport.to_json` /
:meth:`BatchReport.to_csv`) is **byte-identical for 1 worker and N
workers**:

* results are emitted in input order, never completion order;
* every reported quantity (node counts, decomposition steps, unified
  op-cache counters) is a deterministic function of the circuit alone —
  the cache uses int-only keys and deterministic eviction (FIFO by
  default; ``cache_policy="lru"`` and ``"2random"`` are deterministic
  too), so its hit/miss counts do not depend on ``PYTHONHASHSEED`` or
  scheduling;
* wall-clock timings are collected but excluded from serialization
  unless ``include_timing=True`` is requested explicitly.

Failure isolation
-----------------
A circuit that raises does not abort the batch: its report row carries
``status="error"`` and the exception text, and every other circuit is
still synthesized.  The same holds for infrastructure failures: the
parallel dispatcher polls every in-flight attempt (it never blocks on a
single pool result), enforces the per-circuit wall-clock deadline
(:attr:`BatchConfig.circuit_timeout`), and watches the pool's worker
table for deaths — a SIGKILLed worker or a runaway sift pass costs
bounded retries (:attr:`BatchConfig.max_retries`, deterministic
exponential backoff) and, once exhausted, one ``status="error"`` row
with ``reason="timeout"`` or ``reason="worker_died"``; it never hangs
or sinks the batch.  Because a worker death does not say which circuit
the victim was running, every in-flight attempt is charged one retry
when a death is observed — surviving attempts keep running and their
results still win, so the only cost is budget.  Error rows use
deterministic text (a function of config and attempt count only), so
the 1-vs-N byte-identity contract survives exhaustion too.

Interruption and cancellation
-----------------------------
An empty input (a source that resolves to zero items) returns an empty
— but valid and serializable — :class:`BatchReport` instead of raising.
``Ctrl-C`` during a parallel batch terminates and joins the worker pool
before the :class:`KeyboardInterrupt` propagates, so no orphaned
workers survive the batch.  A caller-supplied ``cancel`` hook (polled
between circuits, and while waiting on pool results) aborts the batch
with :class:`BatchCancelled` and reaps the pool the same way — the
seam the async serving layer (:mod:`repro.serve`) cancels in-flight
jobs through.
"""

from __future__ import annotations

import collections
import contextlib
import csv
import io
import json
import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from ..bdd.arena import (
    ArenaError,
    SharedStoreFull,
    WorkerArenaSpec,
    attach_worker_arena,
    current_arena,
    current_store,
)
from ..bdd.manager import (
    BDD,
    CACHE_POLICIES,
    DEFAULT_CACHE_CAPACITY,
    BDDError,
    combine_cache_stats,
)
from ..benchgen import build_benchmark
from ..faults import active as faults_active
from ..faults import inject as inject_fault
from ..network import BddSizeExceeded, check_equivalence, global_bdds
from .bds import REORDER_POLICIES

if TYPE_CHECKING:  # pragma: no cover - hints only (runtime import is lazy)
    from ..api import InputItem, InputSource, StageEvent

#: Flows the batch service can run — every pipeline in the default
#: registry (the two BDD flows define the Table-I node counts and the
#: op-cache columns; abc/dc rows report status/verification only).
BATCH_FLOWS = ("bds-maj", "bds-pga", "abc", "dc")

#: Schema tag written into every JSON report.
REPORT_SCHEMA = "bdsmaj-batch-report/v1"

_CSV_COLUMNS = (
    "benchmark",
    "flow",
    "status",
    "and",
    "or",
    "xor",
    "xnor",
    "maj",
    "total",
    "supernodes",
    "sifted",
    "majority_steps",
    "and_or_steps",
    "xor_steps",
    "mux_steps",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_hit_rate",
    "verified",
    "error",
)


class BatchCancelled(RuntimeError):
    """Raised when a ``cancel`` hook asked :func:`run_batch` to stop.

    The partially built report is discarded; the worker pool (if any)
    has already been terminated and joined when this propagates.
    """


@dataclass(frozen=True)
class BatchConfig:
    """Batch-run knobs."""

    flow: str = "bds-maj"
    workers: int = 1
    #: Equivalence-check every synthesized circuit (slow on big ones).
    verify: bool = False
    #: BDD operation-cache eviction policy for the flows' managers
    #: ("fifo" | "lru" | "2random").  The FIFO default keeps every published
    #: counter unchanged.
    cache_policy: str = "fifo"
    #: BDD operation-cache capacity per manager (entries, not bytes).
    #: The default keeps every published counter unchanged.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    #: Variable-reordering policy of the BDS flows
    #: ("none" | "once" | "converge" | "dynamic"); the "once" default is
    #: the published single-pass behavior and keeps every report
    #: byte-identical.  Ignored by the abc/dc flows, which do not
    #: reorder.
    reorder: str = "once"
    #: Per-circuit wall-clock deadline in seconds (``None`` = none).  A
    #: parallel batch abandons the attempt at the deadline and retries
    #: or errors it; the serial path enforces the same budget post-hoc
    #: (it cannot preempt itself) with identical report bytes.
    circuit_timeout: float | None = None
    #: Extra attempts a circuit gets after a timeout or a worker death
    #: before finishing as ``status="error"`` (0 = fail fast).
    max_retries: int = 2
    #: Base seconds of the deterministic exponential retry backoff:
    #: the retry after attempt ``n`` waits ``retry_backoff * 2**(n-1)``.
    retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.flow not in BATCH_FLOWS:
            raise ValueError(f"unknown batch flow {self.flow!r} (known: {BATCH_FLOWS})")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r} "
                f"(known: {CACHE_POLICIES})"
            )
        if self.cache_capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.reorder not in REORDER_POLICIES:
            raise ValueError(
                f"unknown reorder policy {self.reorder!r} "
                f"(known: {REORDER_POLICIES})"
            )
        if self.circuit_timeout is not None and self.circuit_timeout <= 0:
            raise ValueError("circuit_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")


@dataclass
class CircuitReport:
    """Everything the batch service records for one circuit."""

    benchmark: str
    flow: str
    status: str  # "ok" | "error"
    node_counts: dict[str, int] = field(default_factory=dict)
    #: Aggregated decomposition-step counts (the EngineStats totals the
    #: bds flow accumulates into its trace); empty for non-BDS flows.
    steps: dict[str, int] = field(default_factory=dict)
    #: Unified op-cache counters summed over the circuit's managers;
    #: empty for non-BDS flows.
    cache: dict[str, int | float] = field(default_factory=dict)
    verified: bool | None = None
    error: str | None = None
    #: Machine-readable failure class for infrastructure errors
    #: (``"timeout"`` | ``"worker_died"``); ``None`` for ok rows and
    #: for ordinary circuit exceptions.  Serialized only when set, so
    #: pre-existing report bytes are untouched.
    reason: str | None = None
    #: Wall-clock synthesis time; nondeterministic, therefore excluded
    #: from serialized reports unless explicitly requested.
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts.values())

    def to_payload(self, include_timing: bool = False) -> dict:
        payload: dict = {
            "benchmark": self.benchmark,
            "flow": self.flow,
            "status": self.status,
            "node_counts": dict(self.node_counts),
            "total_nodes": self.total_nodes,
            "steps": dict(self.steps),
            "cache": dict(self.cache),
            "verified": self.verified,
            "error": self.error,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if include_timing:
            payload["seconds"] = self.seconds
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "CircuitReport":
        """Rebuild a report from its :meth:`to_payload` dict (the job
        journal's replay path).  Round-trip contract: the rebuilt
        report's ``to_payload``/``to_json`` bytes equal the original's
        (timing excluded — wall-clock is nondeterministic and is not
        journaled)."""
        return cls(
            benchmark=payload["benchmark"],
            flow=payload["flow"],
            status=payload["status"],
            node_counts=dict(payload.get("node_counts") or {}),
            steps=dict(payload.get("steps") or {}),
            cache=dict(payload.get("cache") or {}),
            verified=payload.get("verified"),
            error=payload.get("error"),
            reason=payload.get("reason"),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass
class BatchReport:
    """Ordered per-circuit reports plus suite-level aggregates."""

    flow: str
    circuits: list[CircuitReport] = field(default_factory=list)
    #: True start-to-finish wall-clock of the batch (shrinks as workers
    #: are added); nondeterministic, so serialized only on request.
    elapsed_seconds: float = 0.0
    #: Robustness-layer tallies, never serialized: they count retry
    #: *events*, which depend on scheduling, not on the input.  The
    #: serving layer folds them into ``/metrics`` counters.
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0

    @property
    def ok_circuits(self) -> list[CircuitReport]:
        return [c for c in self.circuits if c.ok]

    @property
    def failed_circuits(self) -> list[CircuitReport]:
        return [c for c in self.circuits if not c.ok]

    @property
    def total_seconds(self) -> float:
        """Summed per-circuit synthesis time (CPU-ish, not wall-clock:
        with N workers this exceeds :attr:`elapsed_seconds`)."""
        return sum(c.seconds for c in self.circuits)

    def summary(self) -> dict[str, int | float]:
        ok = self.ok_circuits
        cache = combine_cache_stats(c.cache for c in ok)
        return {
            "circuits": len(self.circuits),
            "ok": len(ok),
            "failed": len(self.failed_circuits),
            "total_nodes": sum(c.total_nodes for c in ok),
            "maj_nodes": sum(c.node_counts.get("maj", 0) for c in ok),
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_evictions": cache["evictions"],
            "cache_hit_rate": cache["hit_rate"],
        }

    def to_json(self, include_timing: bool = False) -> str:
        payload = {
            "schema": REPORT_SCHEMA,
            "flow": self.flow,
            "circuits": [c.to_payload(include_timing) for c in self.circuits],
            "summary": self.summary(),
        }
        if include_timing:
            payload["total_seconds"] = self.total_seconds
            payload["elapsed_seconds"] = self.elapsed_seconds
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_csv(self, include_timing: bool = False) -> str:
        columns = _CSV_COLUMNS + (("seconds",) if include_timing else ())
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for report in self.circuits:
            row: list[object] = [
                report.benchmark,
                report.flow,
                report.status,
                report.node_counts.get("and", 0),
                report.node_counts.get("or", 0),
                report.node_counts.get("xor", 0),
                report.node_counts.get("xnor", 0),
                report.node_counts.get("maj", 0),
                report.total_nodes,
                report.steps.get("supernodes", 0),
                report.steps.get("sifted", 0),
                report.steps.get("majority", 0),
                report.steps.get("and_or", 0),
                report.steps.get("xor", 0),
                report.steps.get("mux", 0),
                report.cache.get("hits", 0),
                report.cache.get("misses", 0),
                report.cache.get("evictions", 0),
                repr(float(report.cache.get("hit_rate", 0.0))),
                "" if report.verified is None else str(report.verified),
                report.error or "",
            ]
            if include_timing:
                row.append(repr(report.seconds))
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_payload(cls, payload: dict) -> "BatchReport":
        """Rebuild a report from its parsed :meth:`to_json` payload.

        The inverse the journal replay path relies on: ``summary`` and
        every per-circuit ``total_nodes`` are derived fields, so they
        are recomputed (not trusted), and a rebuilt report re-serializes
        **byte-identical** to the original ``to_json``/``to_csv`` output
        (timing fields excluded — they are not journaled)."""
        return cls(
            flow=payload["flow"],
            circuits=[
                CircuitReport.from_payload(entry)
                for entry in payload.get("circuits") or []
            ],
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )


def _flow_config(config: BatchConfig):
    """Per-flow optimization config for one batch unit of work
    (verification is handled by the batch layer itself)."""
    from .abc import AbcFlowConfig
    from .bds import BdsFlowConfig
    from .dc import DcFlowConfig

    if config.flow in ("bds-maj", "bds-pga"):
        flow_config = BdsFlowConfig(
            enable_majority=(config.flow == "bds-maj"),
            verify=False,
            reorder=config.reorder,
        )
    elif config.flow == "abc":
        return AbcFlowConfig(verify=False)
    else:
        flow_config = DcFlowConfig(verify=False)
    flow_config.partition.cache_policy = config.cache_policy
    flow_config.partition.cache_capacity = config.cache_capacity
    return flow_config


def _load_item(item: "InputItem"):
    """Load one input item.

    Registry items resolve through this module's ``build_benchmark``
    binding (tests monkeypatch it to inject failures)."""
    if item.kind == "registry":
        return build_benchmark(item.name)
    return item.load()


#: Live-node budget for the arena verify manager — generous because the
#: target accumulates the memoized spec cones of every circuit the
#: worker has verified so far.
_ARENA_VERIFY_MAX_NODES = 500_000

# Per-thread arena verify state: (arena, target manager, binding,
# {root key: spec edge}).  Thread-local because serial serve jobs run on
# executor threads that would otherwise share one mutable manager; pool
# workers are single-threaded, so each simply gets one state for life.
_arena_verify_state = threading.local()


def _arena_verified(item: "InputItem", network, optimized) -> bool | None:
    """Formal equivalence via the shared BDD arena, if it can answer.

    When this process is attached to an arena holding the golden cones
    of ``item`` (registry circuits only — BLIF bytes can differ from the
    registry's version of the same name), the spec BDDs are copied out
    of the arena (copy-on-miss, memoized across circuits) and compared
    against a global BDD of the optimized network built in the same
    manager: canonicity makes equivalence an edge comparison.  Returns
    ``None`` whenever the arena cannot answer — not attached, circuit
    absent, optimized BDD over budget — so the caller falls back to
    :func:`~repro.network.check_equivalence`.  Both answers feed the
    same boolean ``verified`` report field, which is why this shortcut
    cannot perturb report bytes.
    """
    arena = current_arena()
    if arena is None or item.kind != "registry":
        return None
    keys = {output: f"{item.name}/{output}" for output in network.outputs}
    if any(key not in arena.roots for key in keys.values()):
        return None
    # With a writable shared store attached, the verify manager targets
    # it instead of a private table: spec cones and optimized rebuilds
    # land in shared memory once, and every other worker's lookups of
    # the same subfunctions are lock-free hits.  A store that filled up
    # (or can't host the arena's variable order) is remembered as
    # broken for this thread and verification continues privately.
    store = current_store()
    if store is not None and store is getattr(
        _arena_verify_state, "broken_store", None
    ):
        store = None
    state = getattr(_arena_verify_state, "value", None)
    if state is None or state[0] is not arena or state[1] is not store:
        try:
            target = arena.manager() if store is None else BDD((), store=store)
            binding = arena.binding(target)
        except (ArenaError, BDDError, SharedStoreFull):
            if store is not None:
                _arena_verify_state.broken_store = store
            return None
        state = (arena, store, target, binding, {})
        _arena_verify_state.value = state
    _, _, target, binding, spec_roots = state
    try:
        for key in keys.values():
            spec_roots[key] = binding.copy(key)
        _, optimized_roots = global_bdds(
            optimized,
            mgr=target,
            # The shared store's count covers *every* process' nodes, so
            # a per-circuit budget would trip on other workers' work;
            # the store's own capacity (SharedStoreFull) is the limit.
            max_nodes=None if store is not None else _ARENA_VERIFY_MAX_NODES,
        )
    except BddSizeExceeded:
        # Too big for the verify budget: drop the optimized scratch
        # nodes (keep every memoized spec cone) and let simulation-based
        # checking take over.
        target.gc(spec_roots.values())
        return None
    except SharedStoreFull:
        # Shared table exhausted: stop targeting it from this thread
        # (append-only stores cannot gc their way back to headroom).
        _arena_verify_state.broken_store = store
        _arena_verify_state.value = None
        return None
    equivalent = all(
        optimized_roots[output] == spec_roots[key] for output, key in keys.items()
    )
    if store is None:
        # Private verify managers shed the optimized scratch nodes;
        # store-backed ones never free (that's the sharing contract).
        target.gc(spec_roots.values())
    return equivalent


def synthesize_one(
    item: "str | InputItem",
    config: BatchConfig,
    stage_progress: "Callable[[str, StageEvent], None] | None" = None,
    cancel: Callable[[], bool] | None = None,
    *,
    attempt: int = 1,
) -> CircuitReport:
    """Synthesize one circuit; never raises for circuit errors.

    This is the unit of work a pool worker executes: it loads the
    circuit (registry key or BLIF file item), runs the optimize prefix
    of the flow's registered pipeline with fresh private managers, and
    snapshots node counts, decomposition steps and op-cache counters
    into a :class:`CircuitReport`.

    ``stage_progress`` and ``cancel`` are for in-process callers only
    (callbacks do not cross the pool's pickle boundary):
    ``stage_progress`` receives ``(benchmark, StageEvent)`` for every
    stage start/end as it happens, via the pipeline observer hooks —
    the serving layer streams per-stage progress from it; ``cancel`` is
    polled before every stage, raising :class:`BatchCancelled` mid-
    circuit instead of only between circuits.

    ``attempt`` is the 1-based retry ordinal the dispatcher is on; it
    never affects the result, only the fault-injection key
    (``"<benchmark>:<attempt>"`` at site ``batch.worker``), so a chaos
    plan can target exactly one attempt of one circuit.
    """
    from ..api import InputItem, StageEventExporter, get_pipeline

    if isinstance(item, str):
        item = InputItem(name=item, kind="registry")
    benchmark = item.name
    observers = (
        ()
        if stage_progress is None
        else (StageEventExporter(lambda event: stage_progress(benchmark, event)),)
    )

    def on_stage_start(_ctx, stage) -> None:
        if faults_active():
            inject_fault("batch.stage", f"{benchmark}:{getattr(stage, 'name', '')}")
        if cancel is not None and cancel():
            raise BatchCancelled(f"cancelled while synthesizing {benchmark!r}")

    start = time.perf_counter()
    try:
        inject_fault("batch.worker", f"{benchmark}:{attempt}")
        network = _load_item(item)
        pipeline = get_pipeline(config.flow).optimize_prefix()
        ctx = pipeline.run_context(
            network,
            _flow_config(config),
            observers=observers,
            on_stage_start=(
                on_stage_start if (cancel is not None or faults_active()) else None
            ),
        )
        trace = ctx.scratch.get("trace")
        steps: dict[str, int] = {}
        if trace is not None:
            steps = {
                "supernodes": trace.supernodes,
                "sifted": trace.sifted,
                "majority": trace.majority_steps,
                "and_or": trace.and_or_steps,
                "xor": trace.xor_steps,
                "mux": trace.mux_steps,
                "tree_nodes": trace.tree_nodes,
            }
        verified: bool | None = None
        if config.verify:
            verified = _arena_verified(item, network, ctx.optimized)
            if verified is None:
                verified = bool(check_equivalence(network, ctx.optimized).equivalent)
        return CircuitReport(
            benchmark=item.name,
            flow=config.flow,
            status="ok",
            node_counts=ctx.node_counts,
            steps=steps,
            cache=ctx.cache_stats,
            verified=verified,
            seconds=time.perf_counter() - start,
        )
    except BatchCancelled:
        raise  # cancellation is a batch-level abort, not a circuit error
    except Exception as exc:  # noqa: BLE001 — failure isolation by design
        return CircuitReport(
            benchmark=item.name,
            flow=config.flow,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - start,
        )


def _pool_worker(args: "tuple[InputItem, BatchConfig, int]") -> CircuitReport:
    item, config, attempt = args
    return synthesize_one(item, config, attempt=attempt)


def _normalize_items(
    keys: "Sequence[str | InputItem] | Iterable[str | InputItem] | InputSource",
) -> "list[InputItem]":
    from ..api import InputItem, InputSource

    if isinstance(keys, InputSource):
        return keys.items()
    items: list[InputItem] = []
    for entry in keys:
        if isinstance(entry, InputItem):
            items.append(entry)
        else:
            # Plain strings stay registry keys; unknown keys surface as
            # per-circuit error rows, not batch aborts.
            items.append(InputItem(name=str(entry), kind="registry"))
    return items


def _init_pool_worker() -> None:
    """Restore default signal handling in forked pool workers.

    Workers inherit the parent's handlers, and when the pool is forked
    from a process with custom ones — the asyncio serving layer installs
    loop handlers for SIGTERM/SIGINT — an inherited handler swallows the
    SIGTERM that ``pool.terminate()`` sends, deadlocking the join that
    follows.  SIGINT is ignored instead: Ctrl-C is the parent's job (it
    reaps the pool on :class:`KeyboardInterrupt`), and workers staying
    quiet avoids a traceback storm from every child.
    """
    try:
        signal.set_wakeup_fd(-1)  # detach any inherited asyncio wakeup pipe
    except (ValueError, OSError):  # pragma: no cover - platform-dependent
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _init_pool_worker_arena(arena_name: "str | WorkerArenaSpec | None") -> None:
    """Pool initializer for arena-backed workers: restore signal
    handling, then attach the shared BDD arena — and, when the spec
    carries one, the writable shared node store (best effort — a failed
    attach leaves the worker arena-less/store-less, not dead)."""
    _init_pool_worker()
    attach_worker_arena(arena_name)


def _pool_ping() -> bool:
    """Health-check task a :class:`WarmPoolManager` runs on acquire."""
    return True


class WarmPoolManager:
    """Reusable worker pools for the serving layer.

    ``batch_pool`` creates and tears down a pool per batch; under a
    server that is pure overhead — every job pays process spawn plus
    (with ``spawn``/``forkserver``) a full interpreter import.  A
    :class:`WarmPoolManager` keeps idle pools parked between jobs:

    * :meth:`acquire` hands out an idle pool of the requested size if
      one is parked (after a ping health-check; an unresponsive pool is
      replaced), else spawns a fresh one;
    * :meth:`release` parks a healthy pool for reuse (bounded per size;
      overflow pools are closed);
    * :meth:`discard` destroys a pool whose batch raised — after a
      ``terminate()`` mid-``imap`` the pool's internal state is
      undefined, so it is never reused;
    * :meth:`drain` tears everything down (server shutdown).

    Pools are keyed by worker count, created through :func:`_pool_context`
    with :func:`_init_pool_worker_arena` so every worker attaches the
    manager's shared BDD arena (``arena_name=None`` means no arena).
    Thread-safe: the serving layer calls it from executor threads.
    """

    def __init__(
        self,
        arena_name: "str | WorkerArenaSpec | None" = None,
        max_idle_per_size: int = 2,
        ping_timeout: float = 10.0,
    ) -> None:
        #: Opaque attach token handed to every spawned worker's
        #: initializer: an arena block name, a
        #: :class:`~repro.bdd.arena.WorkerArenaSpec` (arena + shared
        #: store), or None.  Mutable: the serve layer's ``--arena
        #: refresh`` mode points it at each newly published snapshot so
        #: respawned pools attach the freshest one.
        self.arena_name = arena_name
        self._max_idle_per_size = max_idle_per_size
        self._ping_timeout = ping_timeout
        self._lock = threading.Lock()
        self._idle: dict[int, list[multiprocessing.pool.Pool]] = {}
        self._sizes: dict[int, int] = {}  # id(pool) -> worker count
        # Attach-token generation: bumped by recycle_idle() so pools
        # spawned against a superseded arena are terminated at release
        # instead of parked (id(pool) -> generation at spawn).
        self._generation = 0
        self._pool_generation: dict[int, int] = {}
        self._drained = False
        #: Acquires served from a parked pool.
        self.warm_acquires = 0
        #: Acquires that had to spawn a fresh pool.
        self.cold_acquires = 0
        #: Parked pools found dead on acquire and replaced.
        self.respawns = 0
        #: Pools destroyed after a failed batch.
        self.discards = 0

    # -- lifecycle ------------------------------------------------------
    def _spawn(self, processes: int) -> multiprocessing.pool.Pool:
        pool = _pool_context().Pool(  # bdslint: disable=RES003 -- manager-owned lifetime: every _spawn result is parked in _idle or handed to a caller that must release()/discard(), and drain() terminates stragglers
            processes=processes,
            initializer=_init_pool_worker_arena,
            initargs=(self.arena_name,),
        )
        with self._lock:
            self._sizes[id(pool)] = processes
            self._pool_generation[id(pool)] = self._generation
        return pool

    def _ping_sweep(
        self, candidates: "list[multiprocessing.pool.Pool]"
    ) -> "tuple[list[multiprocessing.pool.Pool], list[multiprocessing.pool.Pool]]":
        """Health-check every candidate pool *concurrently*.

        Returns ``(healthy, dead)`` — dead includes pools whose ping
        never answered.  One shared deadline bounds the whole sweep, so
        ``k`` hung pools cost one ``ping_timeout``, not ``k`` of them
        back to back (the old serial probe made a cold spawn cheaper
        than inspecting a sick parking lot).
        """
        pings: list[tuple[multiprocessing.pool.Pool, multiprocessing.pool.AsyncResult]]
        pings = []
        dead: list[multiprocessing.pool.Pool] = []
        healthy: list[multiprocessing.pool.Pool] = []
        for pool in candidates:
            try:
                pings.append((pool, pool.apply_async(_pool_ping)))
            except Exception:  # noqa: BLE001 - a broken pool is a dead pool
                dead.append(pool)
        wake = time.monotonic() + self._ping_timeout
        while pings and time.monotonic() < wake:
            still_waiting = []
            for pool, ping in pings:
                if ping.ready():
                    try:
                        ok = bool(ping.get(timeout=0))
                    except Exception:  # noqa: BLE001 - crashed ping = dead
                        ok = False
                    (healthy if ok else dead).append(pool)
                else:
                    still_waiting.append((pool, ping))
            pings = still_waiting
            if pings:
                time.sleep(0.01)
        dead.extend(pool for pool, _ in pings)  # timed out: count as dead
        return healthy, dead

    def acquire(self, processes: int) -> multiprocessing.pool.Pool:
        """A ready pool with ``processes`` workers (parked or fresh)."""
        with self._lock:
            if self._drained:
                raise RuntimeError("WarmPoolManager is drained")
            candidates = list(self._idle.pop(processes, ()))
        healthy, dead = self._ping_sweep(candidates) if candidates else ([], [])
        for pool in dead:
            # A parked pool died or hung (OOM-killed worker, crashed
            # interpreter): reap it and count the replacement.
            with self._lock:
                self.respawns += 1
                self._sizes.pop(id(pool), None)
            pool.terminate()
            pool.join()
        # Most recently parked first (warmest caches), like the old
        # LIFO pop; the rest go back on the lot unless a concurrent
        # drain() won the race, in which case they are torn down too.
        chosen = healthy.pop() if healthy else None
        with self._lock:
            drained = self._drained
            if not drained and healthy:
                self._idle.setdefault(processes, [])[:0] = healthy
                healthy = []
        if drained:
            if chosen is not None:
                healthy.append(chosen)
            for pool in healthy:
                with self._lock:
                    self._sizes.pop(id(pool), None)
                pool.terminate()
                pool.join()
            raise RuntimeError("WarmPoolManager is drained")
        if chosen is not None:
            with self._lock:
                self.warm_acquires += 1
            return chosen
        with self._lock:
            self.cold_acquires += 1
        return self._spawn(processes)

    def release(self, pool: multiprocessing.pool.Pool) -> None:
        """Park a pool whose batch completed cleanly."""
        with self._lock:
            processes = self._sizes.get(id(pool))
            park = (
                not self._drained
                and processes is not None
                and self._pool_generation.get(id(pool)) == self._generation
                and len(self._idle.setdefault(processes, [])) < self._max_idle_per_size
            )
            if park:
                self._idle[processes].append(pool)
            else:
                self._sizes.pop(id(pool), None)
                self._pool_generation.pop(id(pool), None)
        if not park:
            pool.terminate()
            pool.join()

    def discard(self, pool: multiprocessing.pool.Pool) -> None:
        """Destroy a pool whose batch raised; never reuse it."""
        with self._lock:
            self.discards += 1
            self._sizes.pop(id(pool), None)
            self._pool_generation.pop(id(pool), None)
        pool.terminate()
        pool.join()

    def recycle_idle(self) -> int:
        """Tear down every *parked* pool (busy ones finish their batch
        and are judged at release time) without draining the manager:
        the next acquire cold-spawns with the current
        :attr:`arena_name`.  The serve layer calls this after a
        snapshot refresh so no worker keeps serving from a superseded
        arena.  Returns the number of pools recycled."""
        with self._lock:
            self._generation += 1
            pools = [pool for parked in self._idle.values() for pool in parked]
            self._idle.clear()
            for pool in pools:
                self._sizes.pop(id(pool), None)
                self._pool_generation.pop(id(pool), None)
            self.respawns += len(pools)
        for pool in pools:
            pool.terminate()
        for pool in pools:
            pool.join()
        return len(pools)

    def drain(self) -> None:
        """Tear down every parked pool; further acquires raise."""
        with self._lock:
            self._drained = True
            pools = [pool for parked in self._idle.values() for pool in parked]
            self._idle.clear()
            self._sizes.clear()
            self._pool_generation.clear()
        for pool in pools:
            pool.terminate()
        for pool in pools:
            pool.join()

    # -- introspection --------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "warm_acquires": self.warm_acquires,
                "cold_acquires": self.cold_acquires,
                "respawns": self.respawns,
                "discards": self.discards,
                "idle_pools": sum(len(parked) for parked in self._idle.values()),
            }


def _pool_context() -> multiprocessing.context.BaseContext:
    """The start method for a new worker pool.

    From the main thread (the CLI) the platform default is kept — fork
    on Linux, cheap and byte-compatible with the published reports.
    From any other thread (the serving layer's executor) forking is
    unsafe: the child inherits every interpreter lock in whatever state
    the *other* threads held it, a latent deadlock — so prefer
    ``forkserver`` (children fork from a clean, single-threaded server
    process), falling back to ``spawn`` where it is unavailable.
    """
    if threading.current_thread() is threading.main_thread():
        return multiprocessing.get_context()
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


@contextlib.contextmanager
def batch_pool(
    processes: int,
    manager: WarmPoolManager | None = None,
    tainted: Callable[[], bool] | None = None,
) -> "Iterator[multiprocessing.pool.Pool]":
    """Worker-pool lifecycle shared by :func:`run_batch` and the serving
    layer.

    Without a ``manager`` (the one-shot mode): a fresh pool is created;
    on a clean exit it is closed and joined; on *any* exception —
    including :class:`KeyboardInterrupt` and :class:`BatchCancelled` —
    it is terminated and joined before the exception propagates, so no
    orphaned workers survive the batch.

    With a :class:`WarmPoolManager` (the serving mode): the pool is
    acquired from — and on a clean exit released back to — the manager,
    staying warm for the next batch; on an exception it is discarded
    (terminated), because a pool torn out of a batch mid-flight is not
    safe to reuse.

    ``tainted`` is the dispatcher's exit report: when it returns true on
    a clean exit, the pool saw a worker death or abandoned a
    deadline-expired attempt, so its result cache holds entries no task
    will ever complete — ``close()``/``join()`` would hang forever (and
    parking it warm would hand the hang to the next job).  Such a pool
    is terminated (one-shot) or discarded (managed) instead.
    """
    if manager is not None:
        pool = manager.acquire(processes)
        try:
            yield pool
        except BaseException:
            manager.discard(pool)
            raise
        else:
            if tainted is not None and tainted():
                manager.discard(pool)
            else:
                manager.release(pool)
        return
    pool = _pool_context().Pool(processes=processes, initializer=_init_pool_worker)
    try:
        yield pool
    except BaseException:
        # Ctrl-C / cancellation: reap the workers, then re-raise so the
        # caller (CLI, serve job runner) still sees the interruption.
        pool.terminate()
        pool.join()
        raise
    else:
        if tainted is not None and tainted():
            pool.terminate()
        else:
            pool.close()
        pool.join()


#: How often (seconds) the parallel dispatcher wakes up to poll flight
#: results, deadlines, worker health and the ``cancel`` hook.
_CANCEL_POLL_SECONDS = 0.1


class _PoolWatch:
    """Observes pool worker deaths between dispatcher polls.

    ``multiprocessing.Pool`` transparently respawns a killed worker
    (its ``_maintain_pool`` thread), but the task the victim was running
    is lost forever — its ``AsyncResult`` never completes, which is
    exactly the hang the old ``next(results)`` consumption suffered.
    Sampling the pool's worker table between polls is the sentinel that
    turns that silent loss into a retryable event.
    """

    def __init__(self, pool: multiprocessing.pool.Pool) -> None:
        self._pool = pool
        self._live = self._snapshot()

    def _snapshot(self) -> set[int]:
        workers = list(getattr(self._pool, "_pool", None) or ())  # noqa: SLF001
        return {proc.pid for proc in workers if proc.exitcode is None}

    def poll(self) -> int:
        """Worker deaths observed since the last call."""
        current = self._snapshot()
        died = len(self._live - current)
        self._live = current
        return died


@dataclass
class _Flight:
    """Dispatch state of one circuit in a parallel batch."""

    index: int
    item: "InputItem"
    #: "queued" (never launched) | "running" (attempt in flight) |
    #: "backoff" (attempt failed, waiting out the retry gate); finished
    #: flights leave the table instead of carrying a state.
    state: str = "queued"
    #: Attempts launched so far (1-based once running).
    attempts: int = 0
    #: Outstanding ``AsyncResult``s.  More than one after a worker-death
    #: retry: the original attempt may still be alive on a surviving
    #: worker, and whichever attempt completes first wins.
    results: "list[multiprocessing.pool.AsyncResult]" = field(default_factory=list)
    #: ``time.monotonic()`` of the latest launch (deadline base).
    attempt_started: float = 0.0
    #: Earliest ``time.monotonic()`` the next retry may launch.
    retry_at: float = 0.0


def _retry_error(reason: str, attempts: int, config: BatchConfig) -> str:
    """Deterministic error text for an exhausted circuit — a pure
    function of config and attempt count, so serial and parallel
    batches (and every worker count) emit byte-identical error rows."""
    if reason == "timeout":
        return (
            f"TimeoutError: exceeded circuit_timeout={config.circuit_timeout:g}s "
            f"on {attempts} attempt(s)"
        )
    return f"WorkerLost: worker process died during synthesis ({attempts} attempt(s))"


def _exhausted_report(
    item: "InputItem", config: BatchConfig, reason: str, attempts: int
) -> CircuitReport:
    return CircuitReport(
        benchmark=item.name,
        flow=config.flow,
        status="error",
        error=_retry_error(reason, attempts, config),
        reason=reason,
    )


def _launch(
    workers: multiprocessing.pool.Pool, flight: _Flight, config: BatchConfig
) -> None:
    flight.attempts += 1
    flight.state = "running"
    flight.attempt_started = time.monotonic()
    flight.results.append(
        workers.apply_async(_pool_worker, ((flight.item, config, flight.attempts),))
    )


def _collect(flight: _Flight, config: BatchConfig) -> CircuitReport | None:
    """First completed attempt of ``flight``, if any.

    :func:`synthesize_one` never raises for circuit errors, so a raising
    ``AsyncResult`` means the task itself broke (unpicklable item, pool
    machinery); it is folded into an error row with the same
    failure-isolation contract as in-circuit exceptions.
    """
    for result in flight.results:
        if not result.ready():
            continue
        try:
            return result.get(timeout=0)
        except Exception as exc:  # noqa: BLE001 - failure isolation by design
            return CircuitReport(
                benchmark=flight.item.name,
                flow=config.flow,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
    return None


def _attempt_failed(
    flight: _Flight,
    reason: str,
    config: BatchConfig,
    now: float,
    report: BatchReport,
) -> CircuitReport | None:
    """One attempt of ``flight`` failed (``"timeout"`` or
    ``"worker_died"``): either gate the deterministic-backoff retry
    (returns ``None``) or exhaust the budget into an error row."""
    if reason == "timeout":
        report.timeouts += 1
        # The deadline voids the attempt: a straggler finishing late
        # must not race its own retry, or near-deadline circuits would
        # flap between outcomes run to run.
        flight.results.clear()
    if flight.attempts >= config.max_retries + 1:
        return _exhausted_report(flight.item, config, reason, flight.attempts)
    flight.state = "backoff"
    flight.retry_at = now + config.retry_backoff * (2 ** (flight.attempts - 1))
    return None


def _synthesize_serial(
    item: "InputItem",
    config: BatchConfig,
    stage_progress: "Callable[[str, StageEvent], None] | None",
    cancel: Callable[[], bool] | None,
    report: BatchReport,
) -> CircuitReport:
    """One circuit on the serial path, honoring the same deadline and
    retry budget as the pool path.

    A single-process batch cannot preempt itself, so the deadline is
    enforced post-hoc — a runaway circuit still runs to completion but
    is *reported* exactly as the parallel path reports it: same attempt
    budget, same deterministic error text, keeping serial and parallel
    reports byte-identical for circuits whose runtime is not sitting on
    the deadline itself.
    """
    deadline = config.circuit_timeout
    attempt = 1
    while True:
        circuit = synthesize_one(
            item, config, stage_progress=stage_progress, cancel=cancel, attempt=attempt
        )
        if deadline is None or circuit.seconds < deadline:
            return circuit
        report.timeouts += 1
        if attempt >= config.max_retries + 1:
            return _exhausted_report(item, config, "timeout", attempt)
        report.retries += 1
        time.sleep(config.retry_backoff * (2 ** (attempt - 1)))
        attempt += 1


def run_batch(
    keys: "Sequence[str | InputItem] | Iterable[str | InputItem] | InputSource",
    config: BatchConfig | None = None,
    progress: Callable[[str], None] | None = None,
    *,
    cancel: Callable[[], bool] | None = None,
    stage_progress: "Callable[[str, StageEvent], None] | None" = None,
    pool: "WarmPoolManager | None" = None,
) -> BatchReport:
    """Synthesize every circuit in ``keys``; report in input order.

    ``keys`` may be registry keys, :class:`~repro.api.InputItem`
    descriptors (mixed freely) or a whole :class:`~repro.api.InputSource`.
    With ``config.workers == 1`` the batch runs serially in-process
    (simplest to debug, no pickling); otherwise a worker pool processes
    circuits concurrently.  Either way the report content is identical.

    An input resolving to zero items returns an empty (but valid and
    serializable) report.  ``cancel`` is polled before every pipeline
    stage of a serial batch, and at ~100 ms intervals while waiting on
    pool results in a parallel one; once it returns true the batch
    raises :class:`BatchCancelled` after reaping any worker pool.
    ``stage_progress`` streams per-stage :class:`~repro.api.StageEvent`
    progress for serial batches (worker processes cannot call back
    across the pickle boundary, so parallel batches only report
    per-circuit completions through ``progress``).

    ``pool`` is the warm-serving seam: a caller-owned
    :class:`WarmPoolManager` whose parked pools are reused instead of
    spawning a fresh pool per batch.  The report stays byte-identical —
    results are collected into input-order slots, and per-circuit
    determinism does not depend on how the pool was obtained.
    """
    if config is None:
        config = BatchConfig()
    items = _normalize_items(keys)
    report = BatchReport(flow=config.flow)
    batch_start = time.perf_counter()
    # Zero circuits is a valid (if vacuous) batch: a glob-driven or
    # service-driven source may legitimately resolve to nothing, and
    # ``multiprocessing.Pool(processes=0)`` would raise.
    if not items:
        report.elapsed_seconds = time.perf_counter() - batch_start
        return report

    def check_cancel() -> None:
        if cancel is not None and cancel():
            raise BatchCancelled(
                f"batch cancelled after {len(report.circuits)} of "
                f"{len(items)} circuits"
            )

    def note(circuit: CircuitReport) -> None:
        if progress is not None:
            outcome = (
                f"total={circuit.total_nodes}" if circuit.ok else f"ERROR {circuit.error}"
            )
            progress(f"{circuit.benchmark:12s} {circuit.flow:8s} {outcome}")

    if config.workers == 1 or len(items) <= 1:
        for item in items:
            check_cancel()
            circuit = _synthesize_serial(item, config, stage_progress, cancel, report)
            note(circuit)
            report.circuits.append(circuit)
        report.elapsed_seconds = time.perf_counter() - batch_start
        return report

    # Parallel: deadline-aware dispatch.  Every circuit is a _Flight
    # polled with ready() — the loop never blocks on a single pool
    # result, so a SIGKILLed worker or a runaway circuit stalls one
    # flight, never the batch.  Results land in input-order slots, so
    # neither completion order nor retries can perturb report bytes;
    # progress lines still stream in input order as the prefix fills.
    cap = min(config.workers, len(items))
    deadline = config.circuit_timeout

    def pool_tainted() -> bool:
        return report.worker_deaths > 0 or report.timeouts > 0

    with batch_pool(cap, manager=pool, tainted=pool_tainted) as workers:
        watch = _PoolWatch(workers)
        slots: list[CircuitReport | None] = [None] * len(items)
        flights: dict[int, _Flight] = {
            index: _Flight(index=index, item=item)
            for index, item in enumerate(items)
        }
        backlog = collections.deque(flights.values())
        active = 0  # flights in state "running" (attempt window <= cap)
        noted = 0

        def launch_due(now: float) -> None:
            """Fill free attempt slots: backoff-expired retries first
            (oldest work), then fresh circuits in input order.  Capping
            concurrent attempts at the pool size keeps queue wait out
            of the deadline clock — a dispatched attempt is (about to
            be) running, so ``attempt_started`` measures work."""
            nonlocal active
            for flight in flights.values():
                if active >= cap:
                    return
                if flight.state == "backoff" and now >= flight.retry_at:
                    report.retries += 1
                    _launch(workers, flight, config)
                    active += 1
            while backlog and active < cap:
                flight = backlog.popleft()
                if flight.state == "queued":
                    _launch(workers, flight, config)
                    active += 1

        launch_due(time.monotonic())
        while flights:
            check_cancel()
            now = time.monotonic()
            progressed = False
            for flight in list(flights.values()):
                if flight.state != "running":
                    continue
                circuit = _collect(flight, config)
                if (
                    circuit is None
                    and deadline is not None
                    and now - flight.attempt_started >= deadline
                ):
                    circuit = _attempt_failed(flight, "timeout", config, now, report)
                if circuit is not None:
                    slots[flight.index] = circuit
                    del flights[flight.index]
                    active -= 1
                    progressed = True
                elif flight.state != "running":
                    active -= 1  # attempt ended; flight is backing off
            deaths = watch.poll()
            if deaths:
                report.worker_deaths += deaths
                now = time.monotonic()
                # The pool cannot say which flight the victim was
                # running, so every in-flight attempt is charged one
                # failure; surviving originals keep their AsyncResults
                # and still win if they complete first.
                for flight in list(flights.values()):
                    if flight.state != "running":
                        continue
                    circuit = _attempt_failed(
                        flight, "worker_died", config, now, report
                    )
                    if circuit is not None:
                        slots[flight.index] = circuit
                        del flights[flight.index]
                    active -= 1
                progressed = True
            launch_due(time.monotonic())
            while noted < len(slots) and slots[noted] is not None:
                note(slots[noted])  # type: ignore[arg-type]
                noted += 1
            if flights and not progressed:
                time.sleep(_CANCEL_POLL_SECONDS)
        report.circuits.extend(
            circuit for circuit in slots if circuit is not None
        )
    report.elapsed_seconds = time.perf_counter() - batch_start
    return report
