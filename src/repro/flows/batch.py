"""Parallel batch-synthesis service: whole benchmark suites in one call.

The paper's headline results (Tables I/II) are produced by running
BDS-MAJ over entire benchmark suites, so the reproduction needs a
throughput layer above the single-circuit flows.  :func:`run_batch`
fans circuits out across a :mod:`multiprocessing` worker pool — every
worker synthesizes its circuits with its own private
:class:`~repro.bdd.BDD` managers, so nothing is shared and nothing
needs locking — and folds the per-circuit results into one
:class:`BatchReport`.

Circuits come from the pluggable input layer (:mod:`repro.api.inputs`):
plain registry keys keep working, and any mix of
:class:`~repro.api.InputItem` descriptors or an
:class:`~repro.api.InputSource` (e.g. ``BlifGlobSource("out/*.blif")``)
is accepted.  Work is executed through the pipeline registry
(:mod:`repro.api.registry`): each circuit runs the optimize prefix of
its flow's pipeline, so every registered flow — including ``abc`` and
``dc`` — can be batched, not just the two BDD flows.

Determinism contract
--------------------
The serialized report (:meth:`BatchReport.to_json` /
:meth:`BatchReport.to_csv`) is **byte-identical for 1 worker and N
workers**:

* results are emitted in input order, never completion order;
* every reported quantity (node counts, decomposition steps, unified
  op-cache counters) is a deterministic function of the circuit alone —
  the cache uses int-only keys and deterministic eviction (FIFO by
  default; ``cache_policy="lru"`` and ``"2random"`` are deterministic
  too), so its hit/miss counts do not depend on ``PYTHONHASHSEED`` or
  scheduling;
* wall-clock timings are collected but excluded from serialization
  unless ``include_timing=True`` is requested explicitly.

Failure isolation
-----------------
A circuit that raises does not abort the batch: its report row carries
``status="error"`` and the exception text, and every other circuit is
still synthesized.

Interruption and cancellation
-----------------------------
An empty input (a source that resolves to zero items) returns an empty
— but valid and serializable — :class:`BatchReport` instead of raising.
``Ctrl-C`` during a parallel batch terminates and joins the worker pool
before the :class:`KeyboardInterrupt` propagates, so no orphaned
workers survive the batch.  A caller-supplied ``cancel`` hook (polled
between circuits, and while waiting on pool results) aborts the batch
with :class:`BatchCancelled` and reaps the pool the same way — the
seam the async serving layer (:mod:`repro.serve`) cancels in-flight
jobs through.
"""

from __future__ import annotations

import contextlib
import csv
import io
import json
import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from ..bdd.manager import CACHE_POLICIES, DEFAULT_CACHE_CAPACITY, combine_cache_stats
from ..benchgen import build_benchmark
from ..network import check_equivalence
from .bds import REORDER_POLICIES

if TYPE_CHECKING:  # pragma: no cover - hints only (runtime import is lazy)
    from ..api import InputItem, InputSource, StageEvent

#: Flows the batch service can run — every pipeline in the default
#: registry (the two BDD flows define the Table-I node counts and the
#: op-cache columns; abc/dc rows report status/verification only).
BATCH_FLOWS = ("bds-maj", "bds-pga", "abc", "dc")

#: Schema tag written into every JSON report.
REPORT_SCHEMA = "bdsmaj-batch-report/v1"

_CSV_COLUMNS = (
    "benchmark",
    "flow",
    "status",
    "and",
    "or",
    "xor",
    "xnor",
    "maj",
    "total",
    "supernodes",
    "sifted",
    "majority_steps",
    "and_or_steps",
    "xor_steps",
    "mux_steps",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_hit_rate",
    "verified",
    "error",
)


class BatchCancelled(RuntimeError):
    """Raised when a ``cancel`` hook asked :func:`run_batch` to stop.

    The partially built report is discarded; the worker pool (if any)
    has already been terminated and joined when this propagates.
    """


@dataclass(frozen=True)
class BatchConfig:
    """Batch-run knobs."""

    flow: str = "bds-maj"
    workers: int = 1
    #: Equivalence-check every synthesized circuit (slow on big ones).
    verify: bool = False
    #: BDD operation-cache eviction policy for the flows' managers
    #: ("fifo" | "lru" | "2random").  The FIFO default keeps every published
    #: counter unchanged.
    cache_policy: str = "fifo"
    #: BDD operation-cache capacity per manager (entries, not bytes).
    #: The default keeps every published counter unchanged.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    #: Variable-reordering policy of the BDS flows
    #: ("none" | "once" | "converge" | "dynamic"); the "once" default is
    #: the published single-pass behavior and keeps every report
    #: byte-identical.  Ignored by the abc/dc flows, which do not
    #: reorder.
    reorder: str = "once"

    def __post_init__(self) -> None:
        if self.flow not in BATCH_FLOWS:
            raise ValueError(f"unknown batch flow {self.flow!r} (known: {BATCH_FLOWS})")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r} "
                f"(known: {CACHE_POLICIES})"
            )
        if self.cache_capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.reorder not in REORDER_POLICIES:
            raise ValueError(
                f"unknown reorder policy {self.reorder!r} "
                f"(known: {REORDER_POLICIES})"
            )


@dataclass
class CircuitReport:
    """Everything the batch service records for one circuit."""

    benchmark: str
    flow: str
    status: str  # "ok" | "error"
    node_counts: dict[str, int] = field(default_factory=dict)
    #: Aggregated decomposition-step counts (the EngineStats totals the
    #: bds flow accumulates into its trace); empty for non-BDS flows.
    steps: dict[str, int] = field(default_factory=dict)
    #: Unified op-cache counters summed over the circuit's managers;
    #: empty for non-BDS flows.
    cache: dict[str, int | float] = field(default_factory=dict)
    verified: bool | None = None
    error: str | None = None
    #: Wall-clock synthesis time; nondeterministic, therefore excluded
    #: from serialized reports unless explicitly requested.
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts.values())

    def to_payload(self, include_timing: bool = False) -> dict:
        payload: dict = {
            "benchmark": self.benchmark,
            "flow": self.flow,
            "status": self.status,
            "node_counts": dict(self.node_counts),
            "total_nodes": self.total_nodes,
            "steps": dict(self.steps),
            "cache": dict(self.cache),
            "verified": self.verified,
            "error": self.error,
        }
        if include_timing:
            payload["seconds"] = self.seconds
        return payload


@dataclass
class BatchReport:
    """Ordered per-circuit reports plus suite-level aggregates."""

    flow: str
    circuits: list[CircuitReport] = field(default_factory=list)
    #: True start-to-finish wall-clock of the batch (shrinks as workers
    #: are added); nondeterministic, so serialized only on request.
    elapsed_seconds: float = 0.0

    @property
    def ok_circuits(self) -> list[CircuitReport]:
        return [c for c in self.circuits if c.ok]

    @property
    def failed_circuits(self) -> list[CircuitReport]:
        return [c for c in self.circuits if not c.ok]

    @property
    def total_seconds(self) -> float:
        """Summed per-circuit synthesis time (CPU-ish, not wall-clock:
        with N workers this exceeds :attr:`elapsed_seconds`)."""
        return sum(c.seconds for c in self.circuits)

    def summary(self) -> dict[str, int | float]:
        ok = self.ok_circuits
        cache = combine_cache_stats(c.cache for c in ok)
        return {
            "circuits": len(self.circuits),
            "ok": len(ok),
            "failed": len(self.failed_circuits),
            "total_nodes": sum(c.total_nodes for c in ok),
            "maj_nodes": sum(c.node_counts.get("maj", 0) for c in ok),
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_evictions": cache["evictions"],
            "cache_hit_rate": cache["hit_rate"],
        }

    def to_json(self, include_timing: bool = False) -> str:
        payload = {
            "schema": REPORT_SCHEMA,
            "flow": self.flow,
            "circuits": [c.to_payload(include_timing) for c in self.circuits],
            "summary": self.summary(),
        }
        if include_timing:
            payload["total_seconds"] = self.total_seconds
            payload["elapsed_seconds"] = self.elapsed_seconds
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_csv(self, include_timing: bool = False) -> str:
        columns = _CSV_COLUMNS + (("seconds",) if include_timing else ())
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for report in self.circuits:
            row: list[object] = [
                report.benchmark,
                report.flow,
                report.status,
                report.node_counts.get("and", 0),
                report.node_counts.get("or", 0),
                report.node_counts.get("xor", 0),
                report.node_counts.get("xnor", 0),
                report.node_counts.get("maj", 0),
                report.total_nodes,
                report.steps.get("supernodes", 0),
                report.steps.get("sifted", 0),
                report.steps.get("majority", 0),
                report.steps.get("and_or", 0),
                report.steps.get("xor", 0),
                report.steps.get("mux", 0),
                report.cache.get("hits", 0),
                report.cache.get("misses", 0),
                report.cache.get("evictions", 0),
                repr(float(report.cache.get("hit_rate", 0.0))),
                "" if report.verified is None else str(report.verified),
                report.error or "",
            ]
            if include_timing:
                row.append(repr(report.seconds))
            writer.writerow(row)
        return buffer.getvalue()


def _flow_config(config: BatchConfig):
    """Per-flow optimization config for one batch unit of work
    (verification is handled by the batch layer itself)."""
    from .abc import AbcFlowConfig
    from .bds import BdsFlowConfig
    from .dc import DcFlowConfig

    if config.flow in ("bds-maj", "bds-pga"):
        flow_config = BdsFlowConfig(
            enable_majority=(config.flow == "bds-maj"),
            verify=False,
            reorder=config.reorder,
        )
    elif config.flow == "abc":
        return AbcFlowConfig(verify=False)
    else:
        flow_config = DcFlowConfig(verify=False)
    flow_config.partition.cache_policy = config.cache_policy
    flow_config.partition.cache_capacity = config.cache_capacity
    return flow_config


def _load_item(item: "InputItem"):
    """Load one input item.

    Registry items resolve through this module's ``build_benchmark``
    binding (tests monkeypatch it to inject failures)."""
    if item.kind == "registry":
        return build_benchmark(item.name)
    return item.load()


def synthesize_one(
    item: "str | InputItem",
    config: BatchConfig,
    stage_progress: "Callable[[str, StageEvent], None] | None" = None,
    cancel: Callable[[], bool] | None = None,
) -> CircuitReport:
    """Synthesize one circuit; never raises for circuit errors.

    This is the unit of work a pool worker executes: it loads the
    circuit (registry key or BLIF file item), runs the optimize prefix
    of the flow's registered pipeline with fresh private managers, and
    snapshots node counts, decomposition steps and op-cache counters
    into a :class:`CircuitReport`.

    ``stage_progress`` and ``cancel`` are for in-process callers only
    (callbacks do not cross the pool's pickle boundary):
    ``stage_progress`` receives ``(benchmark, StageEvent)`` for every
    stage start/end as it happens, via the pipeline observer hooks —
    the serving layer streams per-stage progress from it; ``cancel`` is
    polled before every stage, raising :class:`BatchCancelled` mid-
    circuit instead of only between circuits.
    """
    from ..api import InputItem, StageEventExporter, get_pipeline

    if isinstance(item, str):
        item = InputItem(name=item, kind="registry")
    benchmark = item.name
    observers = (
        ()
        if stage_progress is None
        else (StageEventExporter(lambda event: stage_progress(benchmark, event)),)
    )

    def check_cancel(_ctx, _stage) -> None:
        if cancel is not None and cancel():
            raise BatchCancelled(f"cancelled while synthesizing {benchmark!r}")

    start = time.perf_counter()
    try:
        network = _load_item(item)
        pipeline = get_pipeline(config.flow).optimize_prefix()
        ctx = pipeline.run_context(
            network,
            _flow_config(config),
            observers=observers,
            on_stage_start=check_cancel if cancel is not None else None,
        )
        trace = ctx.scratch.get("trace")
        steps: dict[str, int] = {}
        if trace is not None:
            steps = {
                "supernodes": trace.supernodes,
                "sifted": trace.sifted,
                "majority": trace.majority_steps,
                "and_or": trace.and_or_steps,
                "xor": trace.xor_steps,
                "mux": trace.mux_steps,
                "tree_nodes": trace.tree_nodes,
            }
        verified: bool | None = None
        if config.verify:
            verified = bool(check_equivalence(network, ctx.optimized).equivalent)
        return CircuitReport(
            benchmark=item.name,
            flow=config.flow,
            status="ok",
            node_counts=ctx.node_counts,
            steps=steps,
            cache=ctx.cache_stats,
            verified=verified,
            seconds=time.perf_counter() - start,
        )
    except BatchCancelled:
        raise  # cancellation is a batch-level abort, not a circuit error
    except Exception as exc:  # noqa: BLE001 — failure isolation by design
        return CircuitReport(
            benchmark=item.name,
            flow=config.flow,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - start,
        )


def _pool_worker(args: "tuple[InputItem, BatchConfig]") -> CircuitReport:
    return synthesize_one(*args)


def _normalize_items(
    keys: "Sequence[str | InputItem] | Iterable[str | InputItem] | InputSource",
) -> "list[InputItem]":
    from ..api import InputItem, InputSource

    if isinstance(keys, InputSource):
        return keys.items()
    items: list[InputItem] = []
    for entry in keys:
        if isinstance(entry, InputItem):
            items.append(entry)
        else:
            # Plain strings stay registry keys; unknown keys surface as
            # per-circuit error rows, not batch aborts.
            items.append(InputItem(name=str(entry), kind="registry"))
    return items


def _init_pool_worker() -> None:
    """Restore default signal handling in forked pool workers.

    Workers inherit the parent's handlers, and when the pool is forked
    from a process with custom ones — the asyncio serving layer installs
    loop handlers for SIGTERM/SIGINT — an inherited handler swallows the
    SIGTERM that ``pool.terminate()`` sends, deadlocking the join that
    follows.  SIGINT is ignored instead: Ctrl-C is the parent's job (it
    reaps the pool on :class:`KeyboardInterrupt`), and workers staying
    quiet avoids a traceback storm from every child.
    """
    try:
        signal.set_wakeup_fd(-1)  # detach any inherited asyncio wakeup pipe
    except (ValueError, OSError):  # pragma: no cover - platform-dependent
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_context() -> multiprocessing.context.BaseContext:
    """The start method for a new worker pool.

    From the main thread (the CLI) the platform default is kept — fork
    on Linux, cheap and byte-compatible with the published reports.
    From any other thread (the serving layer's executor) forking is
    unsafe: the child inherits every interpreter lock in whatever state
    the *other* threads held it, a latent deadlock — so prefer
    ``forkserver`` (children fork from a clean, single-threaded server
    process), falling back to ``spawn`` where it is unavailable.
    """
    if threading.current_thread() is threading.main_thread():
        return multiprocessing.get_context()
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


@contextlib.contextmanager
def batch_pool(processes: int) -> "Iterator[multiprocessing.pool.Pool]":
    """Worker-pool lifecycle shared by :func:`run_batch` and the serving
    layer: on a clean exit the pool is closed and joined; on *any*
    exception — including :class:`KeyboardInterrupt` and
    :class:`BatchCancelled` — it is terminated and joined before the
    exception propagates, so no orphaned workers survive the batch.
    """
    pool = _pool_context().Pool(processes=processes, initializer=_init_pool_worker)
    try:
        yield pool
    except BaseException:
        # Ctrl-C / cancellation: reap the workers, then re-raise so the
        # caller (CLI, serve job runner) still sees the interruption.
        pool.terminate()
        pool.join()
        raise
    else:
        pool.close()
        pool.join()


#: How often (seconds) a cancellable parallel batch wakes up to poll its
#: ``cancel`` hook while waiting for the next pool result.
_CANCEL_POLL_SECONDS = 0.1


def run_batch(
    keys: "Sequence[str | InputItem] | Iterable[str | InputItem] | InputSource",
    config: BatchConfig | None = None,
    progress: Callable[[str], None] | None = None,
    *,
    cancel: Callable[[], bool] | None = None,
    stage_progress: "Callable[[str, StageEvent], None] | None" = None,
) -> BatchReport:
    """Synthesize every circuit in ``keys``; report in input order.

    ``keys`` may be registry keys, :class:`~repro.api.InputItem`
    descriptors (mixed freely) or a whole :class:`~repro.api.InputSource`.
    With ``config.workers == 1`` the batch runs serially in-process
    (simplest to debug, no pickling); otherwise a worker pool processes
    circuits concurrently.  Either way the report content is identical.

    An input resolving to zero items returns an empty (but valid and
    serializable) report.  ``cancel`` is polled before every pipeline
    stage of a serial batch, and at ~100 ms intervals while waiting on
    pool results in a parallel one; once it returns true the batch
    raises :class:`BatchCancelled` after reaping any worker pool.
    ``stage_progress`` streams per-stage :class:`~repro.api.StageEvent`
    progress for serial batches (worker processes cannot call back
    across the pickle boundary, so parallel batches only report
    per-circuit completions through ``progress``).
    """
    if config is None:
        config = BatchConfig()
    items = _normalize_items(keys)
    report = BatchReport(flow=config.flow)
    batch_start = time.perf_counter()
    # Zero circuits is a valid (if vacuous) batch: a glob-driven or
    # service-driven source may legitimately resolve to nothing, and
    # ``multiprocessing.Pool(processes=0)`` would raise.
    if not items:
        report.elapsed_seconds = time.perf_counter() - batch_start
        return report

    def check_cancel() -> None:
        if cancel is not None and cancel():
            raise BatchCancelled(
                f"batch cancelled after {len(report.circuits)} of "
                f"{len(items)} circuits"
            )

    def note(circuit: CircuitReport) -> None:
        if progress is not None:
            outcome = (
                f"total={circuit.total_nodes}" if circuit.ok else f"ERROR {circuit.error}"
            )
            progress(f"{circuit.benchmark:12s} {circuit.flow:8s} {outcome}")

    if config.workers == 1 or len(items) <= 1:
        for item in items:
            check_cancel()
            circuit = synthesize_one(
                item, config, stage_progress=stage_progress, cancel=cancel
            )
            note(circuit)
            report.circuits.append(circuit)
    else:
        jobs = [(item, config) for item in items]
        with batch_pool(min(config.workers, len(jobs))) as pool:
            # imap preserves input order, so the report never depends
            # on which worker finishes first.
            results = pool.imap(_pool_worker, jobs)
            while True:
                check_cancel()
                try:
                    if cancel is None:
                        circuit = next(results)
                    else:
                        # Short-timeout polling keeps cancellation
                        # responsive even mid-circuit.
                        circuit = results.next(timeout=_CANCEL_POLL_SECONDS)
                except StopIteration:
                    break
                except multiprocessing.TimeoutError:
                    continue
                note(circuit)
                report.circuits.append(circuit)
    report.elapsed_seconds = time.perf_counter() - batch_start
    return report
