"""The Design-Compiler-like baseline flow (``compile -area`` stand-in).

Synopsys DC is commercial and unavailable; this flow emulates the
behaviour relevant to Table II (see DESIGN.md):

* XOR/XNOR gates written in the RTL survive to mapping (DC recognizes
  HDL operators), so datapath circuits keep their XOR cells;
* no majority extraction — MAJ-shaped SOP covers are treated as plain
  two-level logic (the very gap BDS-MAJ exploits; the paper's Table II
  shows DC as the closest but still trailing competitor);
* everything else is partially collapsed, minimized as two-level
  covers (BDD-based ISOP) and algebraically factored into gates —
  the classic SOP-factoring synthesis recipe DC descends from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd.isop import isop_cover_rows
from ..core import TreeBuilder
from ..core.emit import network_from_trees
from ..mapping.library import CellLibrary
from ..mapping.mapper import classify_gate
from ..network import LogicNetwork, PartitionConfig, partition_with_bdds
from ..sop import GateEmitter, expression_from_cover, factor_expression, simplify_cover
from .common import FlowResult


@dataclass
class DcFlowConfig:
    #: DC collapses more conservatively than BDS (it keeps the HDL
    #: structure where flattening does not pay), hence the smaller
    #: support budget than the BDS flows use.
    partition: PartitionConfig = field(
        default_factory=lambda: PartitionConfig(max_support=6, max_bdd_nodes=150)
    )
    verify: bool = True
    library: CellLibrary | None = None


def dc_optimize(network: LogicNetwork, config: DcFlowConfig | None = None) -> LogicNetwork:
    """Collapse / minimize / factor, preserving RTL XOR structure.

    One-shot reference implementation of the pipeline's ``collapse ->
    rewrite`` stages (:mod:`repro.api.stages`); the equivalence tests
    pin the two forms to identical networks.
    """
    if config is None:
        config = DcFlowConfig()

    # DC recognizes the RTL operators: XOR/XNOR gates and ternary muxes
    # survive collapsing (majority covers do NOT — that is the gap the
    # paper exploits).
    hard: set[str] = set()
    for name in network.topological_order():
        kind, _, _ = classify_gate(network.node(name))
        if kind in ("xor", "mux"):
            hard.add(name)
    partition_config = PartitionConfig(
        max_support=config.partition.max_support,
        max_bdd_nodes=config.partition.max_bdd_nodes,
        max_duplication=config.partition.max_duplication,
        duplication_literals=config.partition.duplication_literals,
        hard_signals=frozenset(hard),
        cache_policy=config.partition.cache_policy,
        cache_capacity=config.partition.cache_capacity,
    )

    builder = TreeBuilder()
    roots: dict[str, int] = {}
    emitter = GateEmitter(
        literal=lambda name, phase: (
            builder.literal(name) if phase else builder.not_(builder.literal(name))
        ),
        and2=builder.and_,
        or2=builder.or_,
        const=builder.const,
    )

    for supernode, mgr, root in partition_with_bdds(network, partition_config):
        name = supernode.output
        if name in hard:
            # Preserved RTL operator: re-emit it verbatim.
            node = network.node(name)
            kind, out_inv, fanins = classify_gate(node)
            if kind == "xor":
                left = builder.literal(fanins[0])
                right = builder.literal(fanins[1])
                tree = builder.xnor(left, right) if out_inv else builder.xor(left, right)
            else:  # mux
                tree = builder.mux(
                    builder.literal(fanins[0]),
                    builder.literal(fanins[1]),
                    builder.literal(fanins[2]),
                )
                if out_inv:
                    tree = builder.not_(tree)
            roots[name] = tree
            continue
        rows = isop_cover_rows(mgr, root, supernode.inputs)
        rows = list(simplify_cover(rows))
        if not rows:
            roots[name] = builder.CONST0
            continue
        expression = expression_from_cover(rows, supernode.inputs)
        roots[name] = factor_expression(expression, emitter)

    return network_from_trees(
        builder,
        roots,
        inputs=list(network.inputs),
        outputs=list(network.outputs),
        name=network.name,
    )


def dc_flow(network: LogicNetwork, config: DcFlowConfig | None = None) -> FlowResult:
    """Compatibility shim over the ``"dc"`` pipeline in
    :mod:`repro.api` (``LoadInput -> Collapse -> Rewrite -> Map ->
    Verify``)."""
    from ..api import get_pipeline

    return get_pipeline("dc").run(network, config)
