"""Network partitioning: partial collapse into supernodes (Section IV.A).

Manipulating one global BDD is impractical for large circuits (the
paper cites Bryant's multiplier lower bound), so BDS preprocesses the
input network by *partially collapsing* it into supernodes, each small
enough for comfortable local-BDD manipulation.  This module implements
that preprocessing with an eliminate-style greedy:

* walking from the outputs toward the inputs, every node joins the
  cluster of its fanout(s) when the merged cluster stays within the
  support budget;
* small nodes may be *duplicated* into a few fanout clusters (the
  eliminate transform of [21] also duplicates cheap logic);
* nodes that cannot be absorbed become supernode outputs themselves.

Every supernode then receives a local BDD (over its boundary signals);
clusters whose BDD exceeds the node budget are demoted to single-node
supernodes, which keeps the flow total and robust.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import BDD, DEFAULT_CACHE_CAPACITY
from .bdds import BddSizeExceeded, supernode_bdd
from .netlist import LogicNetwork


@dataclass
class PartitionConfig:
    """Partial-collapse budgets.

    ``max_support`` bounds a supernode's boundary-signal count (local
    BDD variables).  ``max_bdd_nodes`` bounds the local BDD size;
    overflowing clusters are demoted.  A node with at most
    ``duplication_literals`` literals may be duplicated into up to
    ``max_duplication`` distinct fanout clusters instead of becoming a
    boundary."""

    max_support: int = 12
    max_bdd_nodes: int = 450
    max_duplication: int = 2
    duplication_literals: int = 4
    #: Node names that must stay supernode outputs and are never
    #: absorbed or duplicated (e.g. XOR gates the DC-like flow keeps).
    hard_signals: frozenset[str] = frozenset()
    #: Eviction policy of every local BDD manager's operation cache
    #: ("fifo" | "lru" | "2random"); FIFO is the measured baseline.
    cache_policy: str = "fifo"
    #: Capacity (entries) of every local BDD manager's operation cache;
    #: the default keeps the published counters unchanged.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    #: Growth-triggered reordering *during* local-BDD construction
    #: (``reorder="dynamic"`` at the flow/batch layer): clusters whose
    #: construction-order BDD overflows ``max_bdd_nodes`` are sifted
    #: mid-build instead of demoted, so cones that fit the budget under
    #: a better order survive as supernodes.
    dynamic_reorder: bool = False
    #: Live-node trigger arming the first mid-build sift (``None`` =
    #: half of ``max_bdd_nodes``; see :meth:`BDD.enable_dynamic_reordering`).
    reorder_threshold: int | None = None


@dataclass
class Supernode:
    """A partition cluster: ``members`` collapse into one local function
    rooted at ``output``; ``inputs`` are its boundary signals in the
    DFS order used for the local BDD."""

    output: str
    members: set[str]
    inputs: list[str] = field(default_factory=list)


def partition(network: LogicNetwork, config: PartitionConfig | None = None) -> list[Supernode]:
    """Partition ``network`` into supernodes, returned in topological
    order (fanin supernodes first)."""
    if config is None:
        config = PartitionConfig()

    order = network.topological_order()
    fanouts = network.fanouts()
    output_set = set(network.outputs)

    clusters: dict[str, Supernode] = {}
    membership: dict[str, list[Supernode]] = {}

    def cluster_support(cluster: Supernode) -> set[str]:
        support: set[str] = set()
        for member in cluster.members:
            for fanin in network.node(member).fanins:
                if fanin not in cluster.members:
                    support.add(fanin)
        return support

    def can_absorb(cluster: Supernode, name: str) -> bool:
        members = cluster.members | {name}
        support: set[str] = set()
        for member in members:  # bdslint: disable=DET001 -- order-insensitive: the loop only accumulates into a set whose len() is compared
            for fanin in network.node(member).fanins:
                if fanin not in members:
                    support.add(fanin)
        return len(support) <= config.max_support

    for name in reversed(order):
        node = network.node(name)
        reader_clusters: list[Supernode] = []
        seen_ids: set[int] = set()
        for reader in fanouts.get(name, ()):
            for cluster in membership.get(reader, ()):
                if id(cluster) not in seen_ids:
                    seen_ids.add(id(cluster))
                    reader_clusters.append(cluster)

        must_own = (
            name in output_set
            or name in config.hard_signals
            or not reader_clusters
        )
        if not must_own:
            # Hard supernodes are kept verbatim by their flow, so they
            # must stay singletons: never absorb into them.
            soft_readers = [
                c for c in reader_clusters if c.output not in config.hard_signals
            ]
            if len(soft_readers) != len(reader_clusters):
                cluster = Supernode(name, {name})
                clusters[name] = cluster
                membership.setdefault(name, []).append(cluster)
                continue
            if len(reader_clusters) == 1:
                target = reader_clusters[0]
                if can_absorb(target, name):
                    target.members.add(name)
                    membership.setdefault(name, []).append(target)
                    continue
            elif (
                len(reader_clusters) <= config.max_duplication
                and node.num_literals <= config.duplication_literals
                and all(can_absorb(c, name) for c in reader_clusters)
            ):
                for cluster in reader_clusters:
                    cluster.members.add(name)
                    membership.setdefault(name, []).append(cluster)
                continue
        cluster = Supernode(name, {name})
        clusters[name] = cluster
        membership.setdefault(name, []).append(cluster)

    result = [clusters[name] for name in order if name in clusters]
    for supernode in result:
        supernode.inputs = _input_order(network, supernode)
    return result


def _input_order(network: LogicNetwork, supernode: Supernode) -> list[str]:
    """Boundary signals in DFS-from-output order (a decent static BDD
    variable order that follows the cone's structure).

    Iterative: a supernode can absorb arbitrarily long single-fanout
    chains, far exceeding the recursion limit.
    """
    order: list[str] = []
    seen: set[str] = set()
    stack = [supernode.output]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name not in supernode.members:
            order.append(name)
            continue
        # Reversed so the DFS visits fanins left-to-right.
        stack.extend(reversed(network.node(name).fanins))
    return order


def build_local_bdd(
    network: LogicNetwork, supernode: Supernode, config: PartitionConfig | None = None
) -> tuple[BDD, int]:
    """Local BDD of a supernode (may raise :class:`BddSizeExceeded`)."""
    if config is None:
        config = PartitionConfig()
    return supernode_bdd(
        network,
        supernode.output,
        supernode.members,
        supernode.inputs,
        max_nodes=config.max_bdd_nodes,
        cache_policy=config.cache_policy,
        cache_capacity=config.cache_capacity,
        dynamic_reorder=config.dynamic_reorder,
        reorder_threshold=config.reorder_threshold,
    )


def partition_with_bdds(
    network: LogicNetwork, config: PartitionConfig | None = None
) -> list[tuple[Supernode, BDD, int]]:
    """Partition and build every local BDD, demoting oversized clusters
    to single-node supernodes (robust default used by the flows).

    Guarantees closure: every supernode input is either a primary input
    or the output of another returned supernode — demotion and node
    duplication can orphan internal signals, which are materialized
    here as additional singleton supernodes.
    """
    if config is None:
        config = PartitionConfig()
    built: dict[str, tuple[Supernode, BDD, int]] = {}

    def build_singleton(name: str) -> None:
        singleton = Supernode(name, {name})
        singleton.inputs = _input_order(network, singleton)
        # Single SOP nodes cannot blow up: no node budget.
        mgr, root = supernode_bdd(
            network,
            name,
            singleton.members,
            singleton.inputs,
            max_nodes=None,
            cache_policy=config.cache_policy,
            cache_capacity=config.cache_capacity,
        )
        mgr.gc([root])
        built[name] = (singleton, mgr, root)

    for supernode in partition(network, config):
        try:
            mgr, root = build_local_bdd(network, supernode, config)
        except BddSizeExceeded:
            for member in _members_topological(network, supernode):
                if member not in built:
                    build_singleton(member)
            continue
        # Only the cone root survives the build: collect the member
        # signals' intermediate BDDs so downstream sifting/decomposition
        # starts from a store holding exactly the live function.
        mgr.gc([root])
        built[supernode.output] = (supernode, mgr, root)

    # Closure pass: materialize referenced-but-unemitted signals.
    emitted = set(network.inputs) | set(built)
    pending = [
        signal
        for entry in built.values()
        for signal in entry[0].inputs
        if signal not in emitted
    ]
    while pending:
        name = pending.pop()
        if name in emitted:
            continue
        build_singleton(name)
        emitted.add(name)
        for signal in built[name][0].inputs:
            if signal not in emitted:
                pending.append(signal)

    position = {name: i for i, name in enumerate(network.topological_order())}
    return [built[name] for name in sorted(built, key=position.__getitem__)]


def _members_topological(network: LogicNetwork, supernode: Supernode) -> list[str]:
    position = {name: i for i, name in enumerate(network.topological_order())}
    return sorted(supernode.members, key=position.__getitem__)


def partition_statistics(
    network: LogicNetwork, supernodes: list[Supernode]
) -> dict[str, float]:
    """Summary used by tests and the experiment logs."""
    sizes = [len(s.members) for s in supernodes]
    supports = [len(s.inputs) for s in supernodes]
    return {
        "supernodes": len(supernodes),
        "collapsed_nodes": sum(sizes),
        "original_nodes": network.num_nodes,
        "max_members": max(sizes, default=0),
        "max_support": max(supports, default=0),
        "mean_members": sum(sizes) / len(sizes) if sizes else 0.0,
    }
