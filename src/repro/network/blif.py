"""BLIF (Berkeley Logic Interchange Format) reader and writer.

The paper's toolchain speaks BLIF: MCNC benchmarks ship as BLIF and the
custom HDL benchmarks are "converted in blif format using a HDL-to-blif
translator" (Section V.A.1).  Only the combinational subset is
supported — ``.model``, ``.inputs``, ``.outputs``, ``.names``, ``.end``
— which covers every circuit in Tables I and II.
"""

from __future__ import annotations

import io
import warnings
from typing import Iterable, TextIO

from .netlist import LogicNetwork, NetworkError


class BlifError(NetworkError):
    """Raised on malformed BLIF input."""


class BlifWarning(UserWarning):
    """Warned on tolerated-but-suspect BLIF input (e.g. missing ``.end``)."""


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF ``text`` into a :class:`LogicNetwork`."""
    return read_blif(io.StringIO(text))


def read_blif(stream: TextIO) -> LogicNetwork:
    """Read a combinational BLIF model from ``stream``."""
    network: LogicNetwork | None = None
    inputs: list[str] = []
    outputs: list[str] = []
    pending: tuple[list[str], list[str]] | None = None  # (signals, rows)
    nodes: list[tuple[str, tuple[str, ...], tuple[str, ...], bool]] = []
    defined: set[str] = set()
    model_name = "top"
    saw_end = False

    def flush_pending() -> None:
        nonlocal pending
        if pending is None:
            return
        signals, rows = pending
        pending = None
        *fanins, name = signals
        if name in defined:
            raise BlifError(f"duplicate .names definition for signal {name!r}")
        defined.add(name)
        on_rows: list[str] = []
        off_rows: list[str] = []
        for row in rows:
            parts = row.split()
            if len(parts) == 1:
                # A bare output value is a row whose pattern is all
                # don't-cares (constant covers are the 0-input case).
                # With inputs present this is also what a truncated row
                # looks like, so it parses with a warning.
                if fanins:
                    warnings.warn(
                        f"bare output value row {row!r} for node {name!r} "
                        f"with {len(fanins)} inputs; interpreting as an "
                        "all-don't-care pattern",
                        BlifWarning,
                        stacklevel=4,
                    )
                pattern, value = "-" * len(fanins), parts[0]
            elif len(parts) == 2:
                pattern, value = parts
            else:
                raise BlifError(f"malformed cover row {row!r} for node {name!r}")
            if len(pattern) != len(fanins):
                raise BlifError(
                    f"cover row {row!r} of node {name!r} does not match "
                    f"{len(fanins)} inputs"
                )
            if value == "1":
                on_rows.append(pattern)
            elif value == "0":
                off_rows.append(pattern)
            else:
                raise BlifError(f"bad output value in row {row!r}")
        if on_rows and off_rows:
            raise BlifError(f"node {name!r} mixes output-1 and output-0 rows")
        if off_rows:
            nodes.append((name, tuple(fanins), tuple(off_rows), True))
        else:
            nodes.append((name, tuple(fanins), tuple(on_rows), False))

    for raw_line in _logical_lines(stream):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("."):
            flush_pending()
            directive, *rest = line.split()
            if directive == ".model":
                model_name = rest[0] if rest else "top"
            elif directive == ".inputs":
                inputs.extend(rest)
            elif directive == ".outputs":
                outputs.extend(rest)
            elif directive == ".names":
                if not rest:
                    raise BlifError(".names with no signals")
                pending = (rest, [])
            elif directive == ".end":
                saw_end = True
                break
            elif directive in (".latch", ".gate", ".subckt"):
                raise BlifError(f"unsupported (sequential/mapped) directive {directive}")
            else:
                # Ignore benign extensions (.default_input_arrival etc.).
                continue
        else:
            if pending is None:
                raise BlifError(f"cover row {line!r} outside .names")
            pending[1].append(line)
    flush_pending()
    if not saw_end:
        # Tolerated: everything parsed is kept, but the model is likely
        # truncated — tell the caller instead of relying on EOF quirks.
        warnings.warn(
            f"BLIF model {model_name!r} has no .end directive; "
            "parsed up to end of input",
            BlifWarning,
            stacklevel=3,
        )

    network = LogicNetwork(model_name)
    for name in inputs:
        network.add_input(name)
    for name, fanins, cover, inverted in nodes:
        network.add_node(name, fanins, cover, inverted)
    for name in outputs:
        network.add_output(name)
    network.validate()
    return network


def _logical_lines(stream: TextIO) -> Iterable[str]:
    """Yield lines with BLIF continuation (trailing backslash) folded."""
    buffer = ""
    for line in stream:
        line = line.rstrip("\n")
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        yield buffer + line
        buffer = ""
    if buffer:
        yield buffer


def write_blif(network: LogicNetwork, stream: TextIO) -> None:
    """Write ``network`` to ``stream`` in BLIF."""
    stream.write(f".model {network.name}\n")
    stream.write(_wrapped(".inputs", network.inputs))
    stream.write(_wrapped(".outputs", network.outputs))
    for name in network.topological_order():
        node = network.node(name)
        if not node.cover:
            # Constant node: an inverted empty cover is constant TRUE;
            # normalize so the reader does not need the inverted flag.
            stream.write(f".names {node.name}\n")
            if node.inverted:
                stream.write("1\n")
            continue
        stream.write(_wrapped(".names", (*node.fanins, node.name)))
        value = "0" if node.inverted else "1"
        for row in node.cover:
            stream.write(f"{row} {value}\n" if row else f"{value}\n")
    stream.write(".end\n")


def to_blif(network: LogicNetwork) -> str:
    buffer = io.StringIO()
    write_blif(network, buffer)
    return buffer.getvalue()


def _wrapped(directive: str, names: Iterable[str], limit: int = 80) -> str:
    """Format a directive with backslash continuations at ~limit cols."""
    parts = [directive]
    lines: list[str] = []
    length = len(directive)
    for name in names:
        if length + len(name) + 1 > limit and len(parts) > 1:
            lines.append(" ".join(parts) + " \\")
            parts = [" "]
            length = 1
        parts.append(name)
        length += len(name) + 1
    lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"
