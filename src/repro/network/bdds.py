"""Bridging networks and BDDs.

* :func:`cover_to_bdd` — a node's SOP cover as a BDD over given edges;
* :func:`global_bdds` — BDDs of the primary outputs of a (small)
  network, used for formal equivalence checking and by tests;
* :func:`supernode_bdd` — the local BDD of a partitioned supernode.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..bdd import BDD, DEFAULT_CACHE_CAPACITY
from .netlist import LogicNetwork, NetworkError, Node


class BddSizeExceeded(NetworkError):
    """Raised when a BDD construction crosses its node budget."""


def cover_to_bdd(
    mgr: BDD, node: Node, fanin_edges: Sequence[int], protect: bool = False
) -> int:
    """Build the BDD of ``node``'s local function; ``fanin_edges[i]`` is
    the BDD of fanin i.

    ``protect=True`` is the dynamic-reordering contract: the evolving
    OR accumulator is registered with :meth:`BDD.protect` while each
    product term is built, so a growth-triggered sift inside an apply
    kernel cannot collect it (the kernel's own operands are protected
    by the kernel; ``fanin_edges`` must already be protected by the
    caller).
    """
    result = mgr.ZERO
    for row in node.cover:
        term = mgr.ONE
        if protect:
            mgr.protect(result)
        try:
            for ch, edge in zip(row, fanin_edges):
                if ch == "1":
                    term = mgr.and_(term, edge)
                elif ch == "0":
                    term = mgr.and_(term, edge ^ 1)
                if term == mgr.ZERO:
                    break
        finally:
            if protect:
                mgr.unprotect(result)
        result = mgr.or_(result, term)
        if result == mgr.ONE:
            break
    return result ^ 1 if node.inverted else result


def global_bdds(
    network: LogicNetwork,
    mgr: BDD | None = None,
    max_nodes: int | None = 200_000,
) -> tuple[BDD, dict[str, int]]:
    """Build BDDs for every primary output over the primary inputs.

    Intended for functional verification of small and medium circuits;
    raises :class:`BddSizeExceeded` when the manager grows beyond
    ``max_nodes`` (monolithic BDDs of e.g. multipliers are intractable —
    the very reason BDS partitions networks, Section IV.A).
    """
    if mgr is None:
        mgr = BDD(list(network.inputs))
    edges: dict[str, int] = {}
    for name in network.inputs:
        if name not in mgr.var_names:
            mgr.add_var(name)
        edges[name] = mgr.var(name)
    for name in network.topological_order():
        node = network.node(name)
        edges[name] = cover_to_bdd(mgr, node, [edges[f] for f in node.fanins])
        # Live, not ever-allocated: a caller that GC'd the manager
        # between outputs is charged only for what is still reachable.
        if max_nodes is not None and mgr.live_nodes() > max_nodes:
            raise BddSizeExceeded(
                f"global BDD exceeded {max_nodes} nodes at {name!r}"
            )
    return mgr, {output: edges[output] for output in network.outputs}


def supernode_bdd(
    network: LogicNetwork,
    output: str,
    members: set[str],
    input_order: Sequence[str],
    max_nodes: int | None = None,
    cache_policy: str = "fifo",
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    dynamic_reorder: bool = False,
    reorder_threshold: int | None = None,
) -> tuple[BDD, int]:
    """Local BDD of the cone ``members`` rooted at ``output``.

    Signals outside ``members`` are treated as free variables in
    ``input_order``.  Raises :class:`BddSizeExceeded` past ``max_nodes``.
    ``cache_policy`` / ``cache_capacity`` configure the manager's
    operation cache (see :class:`repro.bdd.OperationCache`).

    ``dynamic_reorder=True`` arms growth-triggered reordering during
    the construction itself (:meth:`BDD.enable_dynamic_reordering`):
    every held edge — the variable edges and each member's cone — is
    registered with :meth:`BDD.protect`, the apply kernels sift the
    store whenever it outgrows ``reorder_threshold`` (default: half the
    node budget, re-armed on a doubling schedule), and a build about to
    cross ``max_nodes`` gets one last-ditch converge sift before the
    guard raises — rescuing cones whose *ordered* size fits the budget
    even though the construction order's does not.  The returned
    manager has dynamic reordering disabled again (downstream
    decomposition holds unprotected edges).
    """
    mgr = BDD(list(input_order), cache_capacity=cache_capacity, cache_policy=cache_policy)
    if dynamic_reorder:
        if reorder_threshold is None:
            reorder_threshold = (
                max(2, max_nodes // 2) if max_nodes is not None else None
            )
        if reorder_threshold is not None:
            mgr.enable_dynamic_reordering(reorder_threshold)
    cache: dict[str, int] = {name: mgr.var(name) for name in input_order}
    if dynamic_reorder:
        for edge in cache.values():
            mgr.protect(edge)

    def over_budget() -> bool:
        """Budget check; on the dynamic path an overflowing store earns
        a rescue sift (over the protected registry — exactly the edges
        the build still holds) before the guard gives up.  One cheap
        single pass first; the full converge only when that was not
        enough — a build hovering at the budget pays one pass per
        overflow, not eight."""
        if max_nodes is None or mgr.live_nodes() <= max_nodes:
            return False
        if not dynamic_reorder:
            return True
        roots = mgr.protected_edges()
        mgr.sift(roots)
        if mgr.live_nodes() > max_nodes:
            mgr.sift_converge(roots)
        mgr.note_reordering()
        return mgr.live_nodes() > max_nodes

    # Iterative post-order build: member chains can be thousands of
    # nodes deep (long single-fanout chains collapse into one cone).
    stack: list[tuple[str, bool]] = [(output, False)]
    while stack:
        name, expanded = stack.pop()
        if name in cache:
            continue
        if name not in members:
            raise NetworkError(
                f"supernode input {name!r} missing from input order"
            )
        node = network.node(name)
        if not expanded:
            stack.append((name, True))
            for fanin in node.fanins:
                if fanin not in cache:
                    stack.append((fanin, False))
            continue
        edge = cover_to_bdd(
            mgr, node, [cache[f] for f in node.fanins], protect=dynamic_reorder
        )
        if dynamic_reorder:
            mgr.protect(edge)
        if over_budget():
            raise BddSizeExceeded(
                f"supernode BDD for {output!r} exceeded {max_nodes} nodes"
            )
        cache[name] = edge

    if dynamic_reorder:
        # Construction is done: ordinary root discipline resumes (the
        # partition layer GCs down to the cone root; decomposition holds
        # plain edges).  The reorder count survives on `mgr.reorderings`.
        mgr.disable_dynamic_reordering()
        mgr.clear_protected()
    return mgr, cache[output]
