"""Bridging networks and BDDs.

* :func:`cover_to_bdd` — a node's SOP cover as a BDD over given edges;
* :func:`global_bdds` — BDDs of the primary outputs of a (small)
  network, used for formal equivalence checking and by tests;
* :func:`supernode_bdd` — the local BDD of a partitioned supernode.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..bdd import BDD, DEFAULT_CACHE_CAPACITY
from .netlist import LogicNetwork, NetworkError, Node


class BddSizeExceeded(NetworkError):
    """Raised when a BDD construction crosses its node budget."""


def cover_to_bdd(mgr: BDD, node: Node, fanin_edges: Sequence[int]) -> int:
    """Build the BDD of ``node``'s local function; ``fanin_edges[i]`` is
    the BDD of fanin i."""
    result = mgr.ZERO
    for row in node.cover:
        term = mgr.ONE
        for ch, edge in zip(row, fanin_edges):
            if ch == "1":
                term = mgr.and_(term, edge)
            elif ch == "0":
                term = mgr.and_(term, edge ^ 1)
            if term == mgr.ZERO:
                break
        result = mgr.or_(result, term)
        if result == mgr.ONE:
            break
    return result ^ 1 if node.inverted else result


def global_bdds(
    network: LogicNetwork,
    mgr: BDD | None = None,
    max_nodes: int | None = 200_000,
) -> tuple[BDD, dict[str, int]]:
    """Build BDDs for every primary output over the primary inputs.

    Intended for functional verification of small and medium circuits;
    raises :class:`BddSizeExceeded` when the manager grows beyond
    ``max_nodes`` (monolithic BDDs of e.g. multipliers are intractable —
    the very reason BDS partitions networks, Section IV.A).
    """
    if mgr is None:
        mgr = BDD(list(network.inputs))
    edges: dict[str, int] = {}
    for name in network.inputs:
        if name not in mgr.var_names:
            mgr.add_var(name)
        edges[name] = mgr.var(name)
    for name in network.topological_order():
        node = network.node(name)
        edges[name] = cover_to_bdd(mgr, node, [edges[f] for f in node.fanins])
        # Live, not ever-allocated: a caller that GC'd the manager
        # between outputs is charged only for what is still reachable.
        if max_nodes is not None and mgr.live_nodes() > max_nodes:
            raise BddSizeExceeded(
                f"global BDD exceeded {max_nodes} nodes at {name!r}"
            )
    return mgr, {output: edges[output] for output in network.outputs}


def supernode_bdd(
    network: LogicNetwork,
    output: str,
    members: set[str],
    input_order: Sequence[str],
    max_nodes: int | None = None,
    cache_policy: str = "fifo",
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
) -> tuple[BDD, int]:
    """Local BDD of the cone ``members`` rooted at ``output``.

    Signals outside ``members`` are treated as free variables in
    ``input_order``.  Raises :class:`BddSizeExceeded` past ``max_nodes``.
    ``cache_policy`` / ``cache_capacity`` configure the manager's
    operation cache (see :class:`repro.bdd.OperationCache`).
    """
    mgr = BDD(list(input_order), cache_capacity=cache_capacity, cache_policy=cache_policy)
    cache: dict[str, int] = {name: mgr.var(name) for name in input_order}

    # Iterative post-order build: member chains can be thousands of
    # nodes deep (long single-fanout chains collapse into one cone).
    stack: list[tuple[str, bool]] = [(output, False)]
    while stack:
        name, expanded = stack.pop()
        if name in cache:
            continue
        if name not in members:
            raise NetworkError(
                f"supernode input {name!r} missing from input order"
            )
        node = network.node(name)
        if not expanded:
            stack.append((name, True))
            for fanin in node.fanins:
                if fanin not in cache:
                    stack.append((fanin, False))
            continue
        edge = cover_to_bdd(mgr, node, [cache[f] for f in node.fanins])
        if max_nodes is not None and mgr.live_nodes() > max_nodes:
            raise BddSizeExceeded(
                f"supernode BDD for {output!r} exceeded {max_nodes} nodes"
            )
        cache[name] = edge

    return mgr, cache[output]
