"""Boolean network substrate: netlists, BLIF I/O, simulation,
equivalence checking and BDS-style network partitioning."""

from .bdds import BddSizeExceeded, cover_to_bdd, global_bdds, supernode_bdd
from .blif import BlifError, BlifWarning, parse_blif, read_blif, to_blif, write_blif
from .equivalence import (
    EquivalenceResult,
    bdd_equivalent,
    check_equivalence,
    exhaustive_equivalent,
    random_equivalent,
)
from .netlist import LogicNetwork, NetworkError, Node
from .verilog import to_verilog, write_verilog
from .partition import (
    PartitionConfig,
    Supernode,
    build_local_bdd,
    partition,
    partition_statistics,
    partition_with_bdds,
)

__all__ = [
    "BddSizeExceeded",
    "BlifError",
    "BlifWarning",
    "EquivalenceResult",
    "LogicNetwork",
    "NetworkError",
    "Node",
    "PartitionConfig",
    "Supernode",
    "bdd_equivalent",
    "build_local_bdd",
    "check_equivalence",
    "cover_to_bdd",
    "exhaustive_equivalent",
    "global_bdds",
    "parse_blif",
    "partition",
    "partition_statistics",
    "partition_with_bdds",
    "random_equivalent",
    "read_blif",
    "supernode_bdd",
    "to_blif",
    "to_verilog",
    "write_blif",
    "write_verilog",
]
