"""Structural Verilog emission.

Downstream consumers of a synthesis tool usually want Verilog next to
BLIF; this writer emits a single combinational module using ``assign``
statements.  Recognized gates render as operators (``&``, ``|``, ``^``,
ternary for MUX, two-level expression for MAJ); general SOP covers
render as sum-of-products expressions.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from .netlist import LogicNetwork

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-safe identifier (escaped identifier when necessary)."""
    if _IDENT.match(name):
        return name
    return f"\\{name} "


def write_verilog(network: LogicNetwork, stream: TextIO) -> None:
    """Write ``network`` as a structural Verilog module."""
    inputs = [_escape(name) for name in network.inputs]
    outputs = [_escape(name) for name in network.outputs]
    ports = ", ".join(inputs + outputs)
    stream.write(f"module {_escape(network.name)} ({ports});\n")
    if inputs:
        stream.write(f"  input {', '.join(inputs)};\n")
    if outputs:
        stream.write(f"  output {', '.join(outputs)};\n")

    output_set = set(network.outputs)
    wires = [
        _escape(name) for name in network.node_names if name not in output_set
    ]
    for chunk_start in range(0, len(wires), 12):
        chunk = wires[chunk_start : chunk_start + 12]
        stream.write(f"  wire {', '.join(chunk)};\n")

    for name in network.topological_order():
        node = network.node(name)
        stream.write(f"  assign {_escape(name)} = {_node_expression(node)};\n")
    stream.write("endmodule\n")


def _node_expression(node) -> str:
    if not node.cover:
        body = "1'b0"
        return f"~({body})" if node.inverted else body
    terms = []
    for row in node.cover:
        literals = []
        for ch, fanin in zip(row, node.fanins):
            if ch == "1":
                literals.append(_escape(fanin))
            elif ch == "0":
                literals.append(f"~{_escape(fanin)}")
        if not literals:
            terms.append("1'b1")
        elif len(literals) == 1:
            terms.append(literals[0])
        else:
            terms.append("(" + " & ".join(literals) + ")")
    body = " | ".join(terms)
    if node.inverted:
        return f"~({body})"
    return body


def to_verilog(network: LogicNetwork) -> str:
    buffer = io.StringIO()
    write_verilog(network, buffer)
    return buffer.getvalue()
