"""Combinational Boolean networks.

A :class:`LogicNetwork` is a DAG of named nodes; every internal node
carries a single-output SOP cover in BLIF conventions (rows over the
node's fanins with characters ``0``, ``1``, ``-``; the node computes
the OR of the rows, optionally complemented for covers parsed from
BLIF's output-0 form).

This is the circuit representation shared by every flow in the
reproduction: benchmark generators produce networks, the BDS-MAJ flow
partitions them into supernode BDDs, the ABC-like flow converts them to
AIGs, the mapper covers them with cells, and bit-parallel simulation
provides equivalence checking throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


class NetworkError(Exception):
    """Raised for malformed networks (cycles, missing signals...)."""


@dataclass(frozen=True)
class Node:
    """One internal node: an SOP cover over named fanins.

    ``cover`` rows follow BLIF: position i constrains ``fanins[i]``
    (``1`` positive literal, ``0`` negative, ``-`` unused); a row is the
    AND of its literals and the node is the OR of its rows.  With
    ``inverted`` the node computes the complement (BLIF output-0 form).
    The constant-1 function is the single empty row ``("",)`` over no
    fanins; constant 0 is the empty cover ``()``.
    """

    name: str
    fanins: tuple[str, ...]
    cover: tuple[str, ...]
    inverted: bool = False

    def __post_init__(self) -> None:
        for row in self.cover:
            if len(row) != len(self.fanins):
                raise NetworkError(
                    f"node {self.name!r}: row {row!r} does not match "
                    f"{len(self.fanins)} fanins"
                )
            if any(ch not in "01-" for ch in row):
                raise NetworkError(f"node {self.name!r}: bad cover row {row!r}")

    @property
    def num_literals(self) -> int:
        """SIS-style literal count of the cover."""
        return sum(1 for row in self.cover for ch in row if ch != "-")

    def eval_ints(self, values: Sequence[int], mask: int) -> int:
        """Bit-parallel evaluation: ``values[i]`` is the packed vector of
        fanin i; returns the packed node output under ``mask``."""
        result = 0
        for row in self.cover:
            term = mask
            for ch, value in zip(row, values):
                if ch == "1":
                    term &= value
                elif ch == "0":
                    term &= ~value
                if not term:
                    break
            result |= term
            if result == mask:
                break
        if self.inverted:
            result = ~result
        return result & mask


class LogicNetwork:
    """A combinational multi-level logic network."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._inputs: list[str] = []
        self._input_set: set[str] = set()
        self._outputs: list[str] = []
        self._nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        if name in self._input_set or name in self._nodes:
            raise NetworkError(f"signal {name!r} already defined")
        self._inputs.append(name)
        self._input_set.add(name)
        return name

    def add_output(self, name: str) -> str:
        if name in self._outputs:
            raise NetworkError(f"output {name!r} already declared")
        self._outputs.append(name)
        return name

    def add_node(
        self,
        name: str,
        fanins: Sequence[str],
        cover: Iterable[str],
        inverted: bool = False,
    ) -> str:
        if name in self._nodes or name in self._input_set:
            raise NetworkError(f"signal {name!r} already defined")
        self._nodes[name] = Node(name, tuple(fanins), tuple(cover), inverted)
        return name

    def replace_node(
        self,
        name: str,
        fanins: Sequence[str],
        cover: Iterable[str],
        inverted: bool = False,
    ) -> None:
        """Swap the local function of an existing node."""
        if name not in self._nodes:
            raise NetworkError(f"no node named {name!r}")
        self._nodes[name] = Node(name, tuple(fanins), tuple(cover), inverted)

    def remove_node(self, name: str) -> None:
        if name not in self._nodes:
            raise NetworkError(f"no node named {name!r}")
        del self._nodes[name]

    # Gate-level convenience constructors -------------------------------
    def add_const(self, name: str, value: bool) -> str:
        return self.add_node(name, (), ("",) if value else ())

    def add_buf(self, name: str, source: str) -> str:
        return self.add_node(name, (source,), ("1",))

    def add_not(self, name: str, source: str) -> str:
        return self.add_node(name, (source,), ("0",))

    def add_and(self, name: str, *sources: str) -> str:
        return self.add_node(name, sources, ("1" * len(sources),))

    def add_or(self, name: str, *sources: str) -> str:
        rows = tuple(
            "-" * i + "1" + "-" * (len(sources) - i - 1) for i in range(len(sources))
        )
        return self.add_node(name, sources, rows)

    def add_nand(self, name: str, *sources: str) -> str:
        return self.add_node(name, sources, ("1" * len(sources),), inverted=True)

    def add_nor(self, name: str, *sources: str) -> str:
        rows = tuple(
            "-" * i + "1" + "-" * (len(sources) - i - 1) for i in range(len(sources))
        )
        return self.add_node(name, sources, rows, inverted=True)

    def add_xor(self, name: str, left: str, right: str) -> str:
        return self.add_node(name, (left, right), ("10", "01"))

    def add_xnor(self, name: str, left: str, right: str) -> str:
        return self.add_node(name, (left, right), ("11", "00"))

    def add_maj(self, name: str, a: str, b: str, c: str) -> str:
        return self.add_node(name, (a, b, c), ("11-", "1-1", "-11"))

    def add_mux(self, name: str, select: str, when_true: str, when_false: str) -> str:
        return self.add_node(name, (select, when_true, when_false), ("11-", "0-1"))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"no node named {name!r}") from None

    def is_input(self, name: str) -> bool:
        return name in self._input_set

    def has_signal(self, name: str) -> bool:
        return name in self._input_set or name in self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_literals(self) -> int:
        return sum(node.num_literals for node in self._nodes.values())

    def fanouts(self) -> dict[str, list[str]]:
        """Map from signal name to the nodes that read it."""
        result: dict[str, list[str]] = {name: [] for name in self._input_set}
        for name in self._nodes:
            result.setdefault(name, [])
        for node in self._nodes.values():
            for fanin in node.fanins:
                result.setdefault(fanin, []).append(node.name)
        return result

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Internal node names, fanins before fanouts.  Raises on cycles
        or references to undefined signals."""
        state: dict[str, int] = {}
        order: list[str] = []

        for start in self._nodes:
            if state.get(start):
                continue
            stack: list[tuple[str, int]] = [(start, 0)]
            while stack:
                name, child_pos = stack.pop()
                if child_pos == 0:
                    if state.get(name) == 2:
                        continue
                    if state.get(name) == 1:
                        raise NetworkError(f"combinational cycle through {name!r}")
                    state[name] = 1
                node = self._nodes[name]
                advanced = False
                for position in range(child_pos, len(node.fanins)):
                    fanin = node.fanins[position]
                    if fanin in self._input_set:
                        continue
                    if fanin not in self._nodes:
                        raise NetworkError(
                            f"node {name!r} reads undefined signal {fanin!r}"
                        )
                    fanin_state = state.get(fanin, 0)
                    if fanin_state == 1:
                        raise NetworkError(f"combinational cycle through {fanin!r}")
                    if fanin_state == 0:
                        stack.append((name, position + 1))
                        stack.append((fanin, 0))
                        advanced = True
                        break
                if not advanced:
                    state[name] = 2
                    order.append(name)
        return order

    def validate(self) -> None:
        """Check structural sanity: acyclic, all signals defined."""
        self.topological_order()
        for output in self._outputs:
            if not self.has_signal(output):
                raise NetworkError(f"output {output!r} is undefined")

    def support_of(self, signals: Iterable[str]) -> set[str]:
        """Primary inputs in the transitive fanin of ``signals``."""
        seen: set[str] = set()
        support: set[str] = set()
        stack = list(signals)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self._input_set:
                support.add(name)
            else:
                stack.extend(self.node(name).fanins)
        return support

    def transitive_fanin(self, signals: Iterable[str]) -> set[str]:
        """All node names (not PIs) in the transitive fanin of ``signals``
        including the signals themselves when they are nodes."""
        seen: set[str] = set()
        result: set[str] = set()
        stack = list(signals)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self._nodes:
                result.add(name)
                stack.extend(self._nodes[name].fanins)
        return result

    def depth(self) -> int:
        """Logic depth in nodes (PIs at depth 0)."""
        depths: dict[str, int] = {name: 0 for name in self._input_set}
        for name in self.topological_order():
            node = self._nodes[name]
            if node.fanins:
                depths[name] = 1 + max(depths[f] for f in node.fanins)
            else:
                depths[name] = 0
        if not self._outputs:
            return 0
        return max(depths.get(output, 0) for output in self._outputs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self, stimulus: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Bit-parallel simulation of ``width`` vectors packed in ints.

        ``stimulus`` maps every primary input to a packed vector.
        Returns packed vectors for the primary outputs.
        """
        values = self.simulate_all(stimulus, width)
        return {output: values[output] for output in self._outputs}

    def simulate_all(
        self, stimulus: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Like :meth:`simulate` but returns every signal's vector."""
        mask = (1 << width) - 1
        values: dict[str, int] = {}
        for name in self._inputs:
            try:
                values[name] = stimulus[name] & mask
            except KeyError:
                raise NetworkError(f"stimulus missing input {name!r}") from None
        for name in self.topological_order():
            node = self._nodes[name]
            values[name] = node.eval_ints(
                [values[fanin] for fanin in node.fanins], mask
            )
        return values

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def sweep_dangling(self) -> int:
        """Remove nodes not reachable from any output; return the count."""
        keep = self.transitive_fanin(self._outputs)
        dangling = [name for name in self._nodes if name not in keep]
        for name in dangling:
            del self._nodes[name]
        return len(dangling)

    def copy(self, name: str | None = None) -> "LogicNetwork":
        duplicate = LogicNetwork(name if name is not None else self.name)
        for input_name in self._inputs:
            duplicate.add_input(input_name)
        for output_name in self._outputs:
            duplicate.add_output(output_name)
        for node in self._nodes.values():
            duplicate.add_node(node.name, node.fanins, node.cover, node.inverted)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogicNetwork {self.name!r} inputs={len(self._inputs)} "
            f"outputs={len(self._outputs)} nodes={len(self._nodes)}>"
        )
