"""Equivalence checking between networks.

Three strategies, composed by :func:`check_equivalence`:

* **exhaustive simulation** for up to ``exhaustive_limit`` inputs —
  bit-parallel, so 2^n vectors cost 2^n / word-size network passes;
* **random simulation** beyond that (probabilistic, seeded);
* **BDD-based** formal check as an opt-in for medium circuits.

Every synthesis flow in this reproduction verifies its output against
its input with this module — the paper's correctness baseline is that
synthesis preserves function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .bdds import BddSizeExceeded, global_bdds
from .netlist import LogicNetwork, NetworkError


@dataclass
class EquivalenceResult:
    equivalent: bool
    method: str
    vectors: int
    counterexample: dict[str, int] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _interfaces_match(left: LogicNetwork, right: LogicNetwork) -> None:
    if set(left.inputs) != set(right.inputs):
        raise NetworkError(
            f"input mismatch: {sorted(set(left.inputs) ^ set(right.inputs))}"
        )
    if set(left.outputs) != set(right.outputs):
        raise NetworkError(
            f"output mismatch: {sorted(set(left.outputs) ^ set(right.outputs))}"
        )


def exhaustive_equivalent(left: LogicNetwork, right: LogicNetwork) -> EquivalenceResult:
    """Compare on all 2^n input vectors (bit-parallel batches of 4096)."""
    _interfaces_match(left, right)
    inputs = list(left.inputs)
    total = 1 << len(inputs)
    batch = min(total, 4096)
    for base in range(0, total, batch):
        stimulus: dict[str, int] = {}
        for position, name in enumerate(inputs):
            packed = 0
            for offset in range(batch):
                if (base + offset) >> position & 1:
                    packed |= 1 << offset
            stimulus[name] = packed
        left_values = left.simulate(stimulus, batch)
        right_values = right.simulate(stimulus, batch)
        for output in left.outputs:
            difference = left_values[output] ^ right_values[output]
            if difference:
                offset = (difference & -difference).bit_length() - 1
                vector = base + offset
                counterexample = {
                    name: vector >> position & 1
                    for position, name in enumerate(inputs)
                }
                return EquivalenceResult(False, "exhaustive", total, counterexample)
    return EquivalenceResult(True, "exhaustive", total)


def random_equivalent(
    left: LogicNetwork,
    right: LogicNetwork,
    vectors: int = 2048,
    seed: int = 2013,
) -> EquivalenceResult:
    """Compare on ``vectors`` random input vectors (probabilistic)."""
    _interfaces_match(left, right)
    rng = random.Random(seed)
    inputs = list(left.inputs)
    width = min(vectors, 4096)
    tested = 0
    while tested < vectors:
        batch = min(width, vectors - tested)
        stimulus = {name: rng.getrandbits(batch) for name in inputs}
        left_values = left.simulate(stimulus, batch)
        right_values = right.simulate(stimulus, batch)
        for output in left.outputs:
            difference = left_values[output] ^ right_values[output]
            if difference:
                offset = (difference & -difference).bit_length() - 1
                counterexample = {
                    name: stimulus[name] >> offset & 1 for name in inputs
                }
                return EquivalenceResult(
                    False, "random", tested + batch, counterexample
                )
        tested += batch
    return EquivalenceResult(True, "random", tested)


def bdd_equivalent(
    left: LogicNetwork, right: LogicNetwork, max_nodes: int = 200_000
) -> EquivalenceResult:
    """Formal check via global BDDs (raises BddSizeExceeded when the
    circuits are too wide for monolithic BDDs)."""
    _interfaces_match(left, right)
    mgr, left_roots = global_bdds(left, max_nodes=max_nodes)
    mgr, right_roots = global_bdds(right, mgr=mgr, max_nodes=max_nodes)
    for output in left.outputs:
        if left_roots[output] != right_roots[output]:
            difference = mgr.xor(left_roots[output], right_roots[output])
            assignment = mgr.pick_assignment(difference) or {}
            counterexample = {
                name: int(assignment.get(name, 0)) for name in left.inputs
            }
            return EquivalenceResult(False, "bdd", 0, counterexample)
    return EquivalenceResult(True, "bdd", 0)


def check_equivalence(
    left: LogicNetwork,
    right: LogicNetwork,
    exhaustive_limit: int = 12,
    vectors: int = 2048,
    seed: int = 2013,
) -> EquivalenceResult:
    """Pick the strongest affordable strategy automatically."""
    if len(left.inputs) <= exhaustive_limit:
        return exhaustive_equivalent(left, right)
    return random_equivalent(left, right, vectors=vectors, seed=seed)
